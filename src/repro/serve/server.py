"""The scenario server: dedup, backpressure, cache-first serving.

:class:`ScenarioServer` owns the whole request path described in the
package docstring.  The transport layer is deliberately tiny — a
hand-rolled HTTP/1.1 responder (keep-alive, ``POST /run``,
``GET /healthz``, ``GET /stats``) and a newline-delimited-JSON unix
socket — because the daemon serves trusted local benchmark traffic,
not the open internet; both feed the same :meth:`ScenarioServer.handle`
coroutine, which is also called directly by the unit tests.

Request outcome vocabulary (the ``source`` field):

``cache``
    Answered from the store's in-memory index.  On a miss the store is
    :meth:`~repro.orchestrator.store.ResultStore.refresh`-ed once —
    rows appended by concurrent sweeps become servable without a
    restart — and the lookup retried.
``dedup``
    Joined an identical in-flight computation (no pool submission).
``fresh``
    This request was the leader: it submitted to the pool and waited.

Telemetry: every request emits a ``request`` event; every
``snapshot_every`` requests (and at shutdown, tagged ``final``) the
server emits per-source ``latency`` percentile snapshots and a
``queue`` depth gauge.  ``repro tail --latency`` renders these.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal as _signal
from collections import deque
from time import monotonic, perf_counter
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..obs.resources import ResourceSampler
from ..obs.writer import NullWriter, TelemetryConfig
from ..orchestrator.store import ResultStore
from .dedup import InflightMap
from .pool import ExecutionFailed, PoolSaturated, ScenarioPool
from .protocol import ProtocolError, ServeRequest, ServeResponse
from .ratelimit import RateLimiter

logger = logging.getLogger(__name__)

__all__ = ["ScenarioServer", "percentile"]

#: Latency samples retained per source for percentile snapshots.
_SAMPLE_WINDOW = 8192
_MAX_BODY = 4 * 1024 * 1024
_MAX_HEADER_LINES = 64


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples`` by nearest rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ScenarioServer:
    """One resident scenario-serving daemon (single event loop).

    Parameters
    ----------
    store:
        Shared result store; ``None`` disables caching (every request
        computes — useful only in tests).
    pool:
        Execution stage; built from the keyword knobs when omitted.
    rate / burst:
        Per-client token-bucket limits (``rate <= 0`` disables).
    telemetry:
        A :class:`~repro.obs.writer.TelemetryConfig` to emit
        ``request``/``queue``/``latency`` events under (optional).
    snapshot_every:
        Emit latency/queue snapshots every N requests.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        pool: Optional[ScenarioPool] = None,
        *,
        workers: int = 4,
        queue_depth: int = 64,
        isolate: bool = False,
        timeout: Optional[float] = None,
        rate: float = 0.0,
        burst: Optional[float] = None,
        telemetry: Optional[TelemetryConfig] = None,
        snapshot_every: int = 500,
        label: str = "serve",
        backend: str = "reference",
    ):
        from ..sim.backend import validate_backend

        #: Round-engine default applied to incoming tree scenarios that
        #: do not name a backend themselves.
        self.backend = validate_backend(backend)
        self.store = store
        self.pool = pool or ScenarioPool(
            store,
            workers=workers,
            queue_depth=queue_depth,
            isolate=isolate,
            timeout=timeout,
        )
        self.inflight = InflightMap()
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.label = label
        self.snapshot_every = max(1, snapshot_every)
        self._telemetry = telemetry
        self._writer = NullWriter()
        self.draining = False
        self.started_at: Optional[float] = None
        self.requests = 0
        self.errors = 0
        # Process-lifetime resource bracket (started in start()) plus
        # cumulative per-job counters folded from fresh-execution rows.
        self._resources = ResourceSampler()
        self.job_cpu_sec = 0.0
        self.job_max_rss_kb = 0
        self.job_energy_j: Optional[float] = None
        self.by_source: Dict[str, int] = {}
        self.by_status: Dict[str, int] = {}
        self._latencies: Dict[str, Deque[float]] = {}
        self._servers: List["asyncio.base_events.Server"] = []
        self._drain_event: Optional["asyncio.Event"] = None

    # -- core request path --------------------------------------------
    async def handle(self, request: ServeRequest) -> ServeResponse:
        """Serve one parsed request end to end."""
        t0 = perf_counter()
        fingerprint = request.fingerprint
        if self.draining:
            return self._finish(request, ServeResponse.failure(
                "draining", "server is shutting down",
                request.request_id, fingerprint), t0)
        if not self.limiter.allow(request.client):
            return self._finish(request, ServeResponse.failure(
                "rate_limited",
                f"client {request.client!r} exceeded "
                f"{self.limiter.rate:g} req/s",
                request.request_id, fingerprint), t0)

        row = self._cache_lookup(fingerprint)
        if row is not None:
            return self._finish(request, ServeResponse(
                ok=True, source="cache", row=row,
                request_id=request.request_id, fingerprint=fingerprint), t0)

        leader, future = self.inflight.lease(fingerprint)
        if leader:
            try:
                pool_future = self.pool.submit(request.spec, fingerprint)
            except PoolSaturated as exc:
                self.inflight.fail(fingerprint, exc)
                return self._finish(request, ServeResponse.failure(
                    "saturated", str(exc),
                    request.request_id, fingerprint), t0)
            self._chain(pool_future, future)
        source = "fresh" if leader else "dedup"
        try:
            # shield: one client disconnecting must not cancel the shared
            # computation other waiters (and the store) depend on.
            row = await asyncio.shield(future)
        except PoolSaturated as exc:
            return self._finish(request, ServeResponse.failure(
                "saturated", str(exc), request.request_id, fingerprint), t0)
        except ExecutionFailed as exc:
            return self._finish(request, ServeResponse.failure(
                "execution_failed", str(exc),
                request.request_id, fingerprint), t0)
        finally:
            if leader:
                # The row is in the store by now (the pool persists
                # before resolving), so dropping the map entry cannot
                # open a recompute window.
                self.inflight.release(fingerprint)
        return self._finish(request, ServeResponse(
            ok=True, source=source, row=dict(row),
            request_id=request.request_id, fingerprint=fingerprint), t0)

    def _cache_lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        if self.store is None:
            return None
        row = self.store.get(fingerprint)
        if row is None and self.store.refresh():
            row = self.store.get(fingerprint)
        return row

    @staticmethod
    def _chain(pool_future: "asyncio.Future",
               inflight_future: "asyncio.Future") -> None:
        """Relay the pool future's outcome onto the shared in-flight one."""
        def _relay(done: "asyncio.Future") -> None:
            if inflight_future.done():
                return
            exc = done.exception()
            if exc is not None:
                inflight_future.set_exception(exc)
            else:
                inflight_future.set_result(done.result())

        pool_future.add_done_callback(_relay)

    def _finish(
        self, request: ServeRequest, response: ServeResponse, t0: float
    ) -> ServeResponse:
        """Stamp latency, fold stats, emit telemetry, snapshot if due."""
        response.latency_ms = (perf_counter() - t0) * 1000.0
        self.requests += 1
        source = response.source or response.status
        self.by_source[source] = self.by_source.get(source, 0) + 1
        self.by_status[response.status] = (
            self.by_status.get(response.status, 0) + 1
        )
        if not response.ok:
            self.errors += 1
        if response.ok and response.source == "fresh" and response.row:
            self._fold_job_resources(response.row)
        bucket = self._latencies.get(source)
        if bucket is None:
            bucket = self._latencies[source] = deque(maxlen=_SAMPLE_WINDOW)
        bucket.append(response.latency_ms)
        self._writer.emit(
            "request",
            fingerprint=response.fingerprint,
            label=request.client,
            data={
                "client": request.client,
                "source": response.source,
                "status": response.status,
                "latency_ms": round(response.latency_ms, 3),
            },
        )
        if self.requests % self.snapshot_every == 0:
            self._emit_snapshots(final=False)
        return response

    def _fold_job_resources(self, row: Dict[str, Any]) -> None:
        """Accumulate one fresh execution's row-level resource columns.

        Cache/dedup hits are deliberately not billed — they cost the
        follower nothing; the leader's fresh execution already counted.
        """
        try:
            self.job_cpu_sec += float(row.get("cpu_sec", 0.0) or 0.0)
            self.job_max_rss_kb = max(
                self.job_max_rss_kb, int(row.get("max_rss_kb", 0) or 0)
            )
            energy = row.get("energy_j")
            if isinstance(energy, (int, float)):
                self.job_energy_j = (self.job_energy_j or 0.0) + float(energy)
        except (TypeError, ValueError):  # malformed foreign row
            logger.debug("unparsable resource columns in row", exc_info=True)

    def resource_stats(self) -> Dict[str, Any]:
        """Cumulative resource counters for ``/stats`` and telemetry."""
        return {
            "process": self._resources.peek().to_data(),
            "jobs": {
                "cpu_sec": round(self.job_cpu_sec, 6),
                "max_rss_kb": self.job_max_rss_kb,
                "energy_j": (
                    None if self.job_energy_j is None
                    else round(self.job_energy_j, 6)
                ),
            },
        }

    def _emit_snapshots(self, final: bool) -> None:
        """Emit per-source ``latency`` percentiles and the ``queue`` gauge."""
        for source, bucket in sorted(self._latencies.items()):
            samples = list(bucket)
            self._writer.emit("latency", label=self.label, data={
                "source": source,
                "count": len(samples),
                "p50_ms": round(percentile(samples, 50), 3),
                "p95_ms": round(percentile(samples, 95), 3),
                "p99_ms": round(percentile(samples, 99), 3),
                "max_ms": round(max(samples), 3) if samples else 0.0,
                "final": final,
            })
        self._writer.emit("queue", label=self.label, data={
            "depth": self.pool.depth,
            "capacity": self.pool.queue_depth,
            "inflight": self.pool.inflight,
            "coalesced": self.inflight.coalesced,
            "final": final,
        })
        resources = self.resource_stats()
        self._writer.emit("resource", label=self.label, data={
            **resources["process"],
            "jobs": resources["jobs"],
            "final": final,
        })

    # -- stats ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the server's counters."""
        snaps = {}
        for source, bucket in sorted(self._latencies.items()):
            samples = list(bucket)
            snaps[source] = {
                "count": len(samples),
                "p50_ms": round(percentile(samples, 50), 3),
                "p95_ms": round(percentile(samples, 95), 3),
                "p99_ms": round(percentile(samples, 99), 3),
            }
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_s": (
                round(monotonic() - self.started_at, 3)
                if self.started_at is not None else 0.0
            ),
            "requests": self.requests,
            "errors": self.errors,
            "by_source": dict(self.by_source),
            "by_status": dict(self.by_status),
            "executions": self.pool.executions,
            "coalesced": self.inflight.coalesced,
            "queue": {
                "depth": self.pool.depth,
                "capacity": self.pool.queue_depth,
                "inflight": self.pool.inflight,
            },
            "store_entries": len(self.store) if self.store is not None else 0,
            "rate_limited": self.limiter.rejected,
            "latency": snaps,
            "resources": self.resource_stats(),
        }

    # -- lifecycle -----------------------------------------------------
    async def start(
        self,
        host: Optional[str] = None,
        port: int = 0,
        socket_path: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Start the pool and the requested listeners.

        Returns the bound endpoints: ``{"http": (host, port),
        "unix": path}`` (absent keys were not requested).  ``port=0``
        binds an ephemeral port — tests read the real one from here.
        """
        if host is None and socket_path is None:
            raise ValueError("serve needs an HTTP host and/or a unix socket")
        if self._telemetry is not None:
            self._writer = self._telemetry.open()
        self._resources.start()
        await self.pool.start()
        self._drain_event = asyncio.Event()
        self.started_at = monotonic()
        endpoints: Dict[str, Any] = {}
        if host is not None:
            server = await asyncio.start_server(
                self._handle_http_connection, host=host, port=port
            )
            self._servers.append(server)
            sock = server.sockets[0].getsockname()
            endpoints["http"] = (sock[0], sock[1])
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_unix_connection, path=socket_path
            )
            self._servers.append(server)
            endpoints["unix"] = socket_path
        self._writer.emit(
            "run_start", span_id=self._writer.trace_id or "serve",
            label=self.label, data={"endpoints": repr(endpoints)},
        )
        logger.info("serving on %s", endpoints)
        return endpoints

    def request_drain(self, reason: str = "signal") -> None:
        """Flip into draining mode (idempotent, signal-handler safe)."""
        if not self.draining:
            logger.info("drain requested (%s)", reason)
            self.draining = True
        if self._drain_event is not None:
            self._drain_event.set()

    def install_signal_handlers(self) -> None:
        """Drain on SIGINT/SIGTERM where the loop supports it."""
        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, self.request_drain, _signal.Signals(sig).name
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loop

    async def serve_until_drained(self, drain_timeout: float = 30.0) -> None:
        """Block until a drain is requested, then shut down cleanly."""
        if self._drain_event is None:
            raise RuntimeError("call start() first")
        await self._drain_event.wait()
        await self.shutdown(drain_timeout)

    async def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Stop listeners, drain the pool, flush telemetry."""
        self.draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        drained = await self.pool.drain(drain_timeout)
        self._emit_snapshots(final=True)
        self._writer.emit(
            "run_end", span_id=self._writer.trace_id or "serve",
            label=self.label,
            data={"requests": self.requests, "errors": self.errors,
                  "executions": self.pool.executions, "drained": drained},
        )
        self._writer.close()
        logger.info(
            "serve shut down: %d requests, %d errors, %d executions",
            self.requests, self.errors, self.pool.executions,
        )

    # -- HTTP transport ------------------------------------------------
    async def _handle_http_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            while True:
                request = await self._read_http_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self.draining
                )
                status, payload = await self._route_http(
                    method, path, headers, body
                )
                await self._write_http_response(
                    writer, status, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            pass
        except ValueError as exc:
            # Malformed request line/headers: answer 400 and hang up.
            try:
                await self._write_http_response(
                    writer, 400,
                    {"ok": False, "status": "bad_request", "error": str(exc)},
                    keep_alive=False,
                )
            except ConnectionError:
                pass
        finally:
            writer.close()

    @staticmethod
    async def _read_http_request(
        reader: "asyncio.StreamReader",
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ValueError("too many header lines")
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise ValueError(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _route_http(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "POST" and path == "/run":
            peer = headers.get("x-repro-client", "")
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {"ok": False, "status": "bad_request",
                             "error": f"invalid JSON body: {exc}"}
            try:
                request = ServeRequest.from_payload(
                    payload, client=peer, default_backend=self.backend
                )
            except ProtocolError as exc:
                response = ServeResponse.failure(exc.status, exc.message)
                self._finish(_anonymous_request(peer), response, perf_counter())
                return response.http_status, response.to_payload()
            response = await self.handle(request)
            return response.http_status, response.to_payload()
        if method == "GET" and path == "/healthz":
            status = 503 if self.draining else 200
            return status, {"status": "draining" if self.draining else "ok",
                            "requests": self.requests}
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        return 404, {"ok": False, "status": "bad_request",
                     "error": f"no route for {method} {path}"}

    @staticmethod
    async def _write_http_response(
        writer: "asyncio.StreamWriter", status: int,
        payload: Dict[str, Any], keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- unix-socket transport (JSON lines) ----------------------------
    async def _handle_unix_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        write_lock = asyncio.Lock()
        pending: List["asyncio.Task"] = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                # One task per line: pipelined requests overlap, which is
                # what lets a single socket client exercise dedup.
                task = asyncio.get_running_loop().create_task(
                    self._serve_unix_line(line, writer, write_lock)
                )
                pending.append(task)
                pending = [t for t in pending if not t.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in pending:
                if not task.done():
                    task.cancel()
            writer.close()

    async def _serve_unix_line(
        self, line: bytes, writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
    ) -> None:
        try:
            payload = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            response = ServeResponse.failure(
                "bad_request", f"invalid JSON line: {exc}"
            )
            self._finish(_anonymous_request("unix"), response, perf_counter())
            return await self._write_unix(writer, write_lock, response)
        try:
            request = ServeRequest.from_payload(
                payload, client="unix", default_backend=self.backend
            )
        except ProtocolError as exc:
            response = ServeResponse.failure(
                exc.status, exc.message,
                request_id=str(payload.get("id", ""))
                if isinstance(payload, dict) else "",
            )
            self._finish(_anonymous_request("unix"), response, perf_counter())
            return await self._write_unix(writer, write_lock, response)
        response = await self.handle(request)
        await self._write_unix(writer, write_lock, response)

    @staticmethod
    async def _write_unix(
        writer: "asyncio.StreamWriter", lock: "asyncio.Lock",
        response: ServeResponse,
    ) -> None:
        async with lock:
            try:
                writer.write(response.to_json().encode("utf-8") + b"\n")
                await writer.drain()
            except ConnectionError:
                pass


def _anonymous_request(client: str) -> ServeRequest:
    """A placeholder request for accounting of unparseable inputs."""
    request = ServeRequest.__new__(ServeRequest)
    object.__setattr__(request, "spec", None)
    object.__setattr__(request, "fingerprint", "")
    object.__setattr__(request, "client", client or "anonymous")
    object.__setattr__(request, "request_id", "")
    return request
