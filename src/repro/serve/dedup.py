"""In-flight request deduplication: one computation, N waiters.

When several clients ask for the same fingerprint while it is being
computed, only the first (*leader*) submits work to the pool; the rest
(*followers*) await the same :class:`asyncio.Future`.  The map is keyed
by scenario fingerprint, so "the same request" means *semantically*
identical — two clients sending specs with different labels but equal
canonical encodings coalesce.

Lifecycle: the leader ``lease()``\\ s the fingerprint, attaches the
future that will carry the result, and ``release()``\\ s the entry once
the future is resolved *and* the row is in the store — never before,
or a third client arriving in the gap would miss both the store and the
map and trigger a duplicate computation.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

__all__ = ["InflightMap"]


class InflightMap:
    """Fingerprint → in-flight future, with coalescing statistics.

    Single-event-loop use only (no locks needed: every mutation happens
    between awaits on the loop thread).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: Requests that joined an existing computation instead of
        #: starting their own.
        self.coalesced = 0
        #: Leases taken (distinct computations started).
        self.leases = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._inflight

    def lease(
        self, fingerprint: str
    ) -> Tuple[bool, "asyncio.Future"]:
        """Join or start the in-flight computation for ``fingerprint``.

        Returns ``(leader, future)``: the leader must eventually resolve
        the future (directly or via :meth:`fail`) and then
        :meth:`release` the entry; followers just await it.
        """
        existing = self._inflight.get(fingerprint)
        if existing is not None:
            self.coalesced += 1
            return False, existing
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self._inflight[fingerprint] = future
        self.leases += 1
        return True, future

    def fail(self, fingerprint: str, exc: BaseException) -> None:
        """Resolve the in-flight future exceptionally and drop the entry.

        Used when the leader cannot even submit (queue saturated): the
        followers all observe the same failure.
        """
        future = self._inflight.pop(fingerprint, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    def release(self, fingerprint: str) -> Optional["asyncio.Future"]:
        """Drop the entry once its result is durably visible elsewhere."""
        return self._inflight.pop(fingerprint, None)
