"""repro — a full reproduction of "Efficient Collaborative Tree
Exploration with Breadth-First Depth-Next" (Cosson, Massoulie, Viennot,
PODC 2023).

Quickstart::

    from repro import BFDN, Simulator, generators

    tree = generators.random_recursive(500)
    result = Simulator(tree, BFDN(), k=8).run()
    print(result.rounds)

See the package sub-modules for the urns-and-balls game (``repro.game``),
the baselines (``repro.baselines``), the guarantee formulas and Figure 1
regions (``repro.bounds``), graph exploration (``repro.graphs``) and the
recursive ``BFDN_ell`` (``repro.core.recursive``).
"""

from .baselines import CTE, OnlineDFS, offline_lower_bound, offline_split_runtime
from .core import BFDN, BFDNEll, WriteReadBFDN, run_with_breakdowns
from .mission import MissionPlan, MissionReport, plan_mission, run_mission
from .scenario import ScenarioSpec, run_scenario, scenario_grid
from .sim import AsyncSimulator, Simulator
from .trees import PartialTree, Tree, generators, tree_from_edges

__version__ = "1.0.0"

__all__ = [
    "BFDN",
    "BFDNEll",
    "WriteReadBFDN",
    "CTE",
    "OnlineDFS",
    "Simulator",
    "AsyncSimulator",
    "plan_mission",
    "run_mission",
    "MissionPlan",
    "MissionReport",
    "ScenarioSpec",
    "run_scenario",
    "scenario_grid",
    "Tree",
    "PartialTree",
    "tree_from_edges",
    "generators",
    "offline_lower_bound",
    "offline_split_runtime",
    "run_with_breakdowns",
    "__version__",
]
