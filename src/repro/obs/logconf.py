"""Package-wide stdlib logging configuration.

Every ``repro`` module gets its logger via the stdlib idiom
(``logging.getLogger(__name__)``); this module owns the single place
that attaches a handler.  :func:`configure_logging` maps the CLI's
``-v`` / ``-q`` count onto a level for the ``repro`` package logger and
installs one stderr handler, leaving the root logger alone so embedding
applications keep control of their own logging tree.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Verbosity count → logging level.  0 is the CLI default.
_LEVELS = {
    -2: logging.CRITICAL,
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_HANDLER_NAME = "repro-obs-handler"


def level_for(verbosity: int) -> int:
    """The logging level for a ``-v``/``-q`` count (clamped)."""
    clamped = max(min(_LEVELS), min(verbosity, max(_LEVELS)))
    return _LEVELS[clamped]


def configure_logging(
    verbosity: int = 0, stream=None, fmt: Optional[str] = None
) -> logging.Logger:
    """Configure the ``repro`` package logger and return it.

    ``verbosity`` counts ``-v`` flags (positive) minus ``-q`` flags
    (negative): 0 → WARNING, 1 → INFO, 2+ → DEBUG, -1 → ERROR,
    -2- → CRITICAL.  Idempotent: reinvoking replaces the level of the
    existing handler instead of stacking duplicates.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level_for(verbosity))
    handler = next(
        (h for h in logger.handlers if h.get_name() == _HANDLER_NAME), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.set_name(_HANDLER_NAME)
        handler.setFormatter(logging.Formatter(fmt or _FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(logging.NOTSET)  # defer to the logger's level
    return logger


__all__ = ["configure_logging", "level_for"]
