"""Unified telemetry: event log, metrics registry, theorem budgets.

One subsystem, four pieces (see DESIGN.md "Telemetry" for the schema):

* :mod:`~repro.obs.schema` / :mod:`~repro.obs.writer` — the append-only
  JSONL event log with trace/span correlation ids;
* :mod:`~repro.obs.metrics` — Counter/Gauge/Histogram primitives and the
  :class:`MetricsObserver` bridge from the round engine;
* :mod:`~repro.obs.budget` — the paper's theorem bounds as live runtime
  budgets (:class:`BudgetObserver`);
* :mod:`~repro.obs.logconf` / :mod:`~repro.obs.tail` — stdlib logging
  setup and the ``repro tail`` summary renderer.
"""

from .budget import (
    Budget,
    BudgetObserver,
    BudgetViolation,
    budgets_for_scenario,
)
from .logconf import configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
)
from .report import (
    build_matrix,
    collect_matrix,
    compare_reports,
    render_html,
    render_markdown,
)
from .resources import (
    EnergyProbe,
    NullEnergyProbe,
    RaplEnergyProbe,
    ResourceSample,
    ResourceSampler,
    default_energy_probe,
)
from .runner import TelemetryJob, run_telemetry_job
from .schema import (
    EVENT_TYPES,
    TELEMETRY_SCHEMA,
    TelemetryEvent,
    new_span_id,
    new_trace_id,
    validate_events,
)
from .tail import summarize, tail
from .writer import (
    NullWriter,
    TelemetryConfig,
    TelemetryWriter,
    load_trace,
    read_events,
)

__all__ = [
    "Budget",
    "BudgetObserver",
    "BudgetViolation",
    "Counter",
    "EVENT_TYPES",
    "EnergyProbe",
    "Gauge",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "NullEnergyProbe",
    "NullWriter",
    "RaplEnergyProbe",
    "ResourceSample",
    "ResourceSampler",
    "TELEMETRY_SCHEMA",
    "TelemetryConfig",
    "TelemetryEvent",
    "TelemetryJob",
    "TelemetryWriter",
    "budgets_for_scenario",
    "build_matrix",
    "collect_matrix",
    "compare_reports",
    "configure_logging",
    "default_energy_probe",
    "load_trace",
    "new_span_id",
    "new_trace_id",
    "read_events",
    "render_html",
    "render_markdown",
    "run_telemetry_job",
    "summarize",
    "tail",
    "validate_events",
]
