"""Metrics primitives and the per-round engine metrics observer.

The registry half is a small, dependency-free take on the counter /
gauge / histogram trio of serving-stack metric systems: every metric has
a name and optional labels, values are plain floats, and
:meth:`MetricsRegistry.collect` renders the whole registry as flat
sample dicts (rows for tables, payloads for telemetry events).

:class:`MetricsObserver` is the bridge from the shared
:class:`~repro.sim.runloop.RoundEngine` into that registry *and* into
the telemetry event log: per round it records moves, idles, reveals,
re-anchors and interference blocks, plus the engine's per-phase wall
times (via the existing ``on_phase_times`` hook), and periodically
flushes cumulative ``round`` events carrying its trace/span ids.
"""

from __future__ import annotations

import logging
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from ..sim.runloop import RoundObserver, RoundRecord, RoundState, RunOutcome
from .writer import NullWriter

logger = logging.getLogger(__name__)

#: Canonical label encoding: a sorted tuple of (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named family of labelled float values."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        if not name:
            raise ValueError("metrics need a non-empty name")
        self.name = name
        self.help = help
        self._values: Dict[LabelSet, float] = {}

    def value(self, **labels: Any) -> float:
        """The current value for one label combination (0.0 if unseen)."""
        return self._values.get(_labelset(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        """Flat sample dicts: ``{"name", "kind", "labels", "value"}``."""
        return [
            {
                "name": self.name,
                "kind": self.kind,
                "labels": dict(labelset),
                "value": value,
            }
            for labelset, value in sorted(self._values.items())
        ]

    def reset(self) -> None:
        """Drop every labelled value."""
        self._values.clear()

    def merge(self, other: "Metric") -> None:
        """Fold another instance of this metric into this one.

        Merging is commutative and associative (values add per label
        set), so folding per-worker registries from a process pool
        yields the same totals in any arrival order.  Gauges merge by
        summation too — the pool-aggregation reading of a gauge is
        "each worker's contribution", not "last writer wins", which
        would be order-dependent.
        """
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {other.kind} {other.name!r} into "
                f"{self.kind} {self.name!r}"
            )
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class Counter(Metric):
    """Monotonically increasing count (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(Metric):
    """A value that can move both ways (per label combination)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled gauge."""
        self._values[_labelset(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (either sign) to the labelled gauge."""
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Histogram(Metric):
    """Cumulative-bucket histogram (per label combination).

    Buckets are fixed upper bounds; ``observe`` also maintains ``sum``
    and ``count`` so means survive aggregation.
    """

    kind = "histogram"

    #: Default buckets sized for per-phase engine times (seconds).
    DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histograms need at least one bucket")
        self._counts: Dict[LabelSet, List[int]] = {}
        self._totals: Dict[LabelSet, Tuple[int, float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        key = _labelset(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        counts[bisect_right(self.buckets, value)] += 1
        count, total = self._totals.get(key, (0, 0.0))
        self._totals[key] = (count + 1, total + value)
        self._values[key] = total + value  # `value()` returns the sum

    def samples(self) -> List[Dict[str, Any]]:
        """Sum/count/bucket samples per label combination."""
        out: List[Dict[str, Any]] = []
        for key in sorted(self._counts):
            count, total = self._totals[key]
            out.append(
                {
                    "name": self.name,
                    "kind": self.kind,
                    "labels": dict(key),
                    "value": total,
                    "count": count,
                    "buckets": {
                        str(bound): n
                        for bound, n in zip(
                            list(self.buckets) + ["inf"], self._counts[key]
                        )
                    },
                }
            )
        return out

    def reset(self) -> None:
        super().reset()
        self._counts.clear()
        self._totals.clear()

    def merge(self, other: "Metric") -> None:
        """Fold another histogram in: bucket-wise and sum/count adds."""
        if type(other) is not type(self) or other.buckets != self.buckets:  # type: ignore[attr-defined]
            raise ValueError(
                f"cannot merge into histogram {self.name!r}: "
                "kind or bucket bounds differ"
            )
        assert isinstance(other, Histogram)
        for key, counts in other._counts.items():
            mine = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for i, n in enumerate(counts):
                mine[i] += n
            count, total = self._totals.get(key, (0, 0.0))
            ocount, ototal = other._totals.get(key, (0, 0.0))
            self._totals[key] = (count + ocount, total + ototal)
            self._values[key] = total + ototal


class MetricsRegistry:
    """A named collection of metrics (one per run, sweep, or process)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create a :class:`Counter`."""
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get-or-create a :class:`Gauge`."""
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets=Histogram.DEFAULT_BUCKETS
    ) -> Histogram:
        """Get-or-create a :class:`Histogram`."""
        return self._register(Histogram(name, help, buckets))  # type: ignore[return-value]

    def collect(self) -> List[Dict[str, Any]]:
        """Every sample of every metric, in name order."""
        samples: List[Dict[str, Any]] = []
        for name in sorted(self._metrics):
            samples.extend(self._metrics[name].samples())
        return samples

    def reset(self) -> None:
        """Reset every metric (the registry keeps its families)."""
        for metric in self._metrics.values():
            metric.reset()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, metric by metric.

        Unknown families are adopted (same kind, same buckets); known
        ones merge commutatively — see :meth:`Metric.merge` — so
        per-worker registries can be folded in any order with identical
        results.  A name registered under two different kinds raises.
        """
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(metric, Histogram):
                    mine = Histogram(name, metric.help, metric.buckets)
                else:
                    mine = type(metric)(name, metric.help)
                self._metrics[name] = mine
            mine.merge(metric)


def _is_mover(move: Any) -> bool:
    """Whether a selected move is an actual move (not a stay)."""
    return isinstance(move, tuple) and bool(move) and move[0] != "stay"


class MetricsObserver(RoundObserver):
    """Streams per-round engine metrics into a registry and the event log.

    Counts, per run: mover moves executed, interference-struck moves,
    idle robot-rounds, reveal events and re-anchor calls (tree states
    expose them through ``state.expl.metrics.reanchors``); accumulates
    the engine's select/apply/observe phase times.  Every ``every``
    rounds — and once at termination — the cumulative counters are
    flushed as one ``round`` telemetry event carrying the observer's
    trace/span ids.
    """

    wants_phase_timing = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        writer=None,
        span_id: str = "",
        fingerprint: str = "",
        label: str = "",
        every: int = 100,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.writer = writer if writer is not None else NullWriter()
        self.span_id = span_id
        self.fingerprint = fingerprint
        self.label = label
        self.every = every
        self._phase_hist = self.registry.histogram(
            "engine_phase_seconds", "per-round engine phase wall time"
        )
        self._reset_run()

    def _reset_run(self) -> None:
        self.rounds = 0
        self.billed_rounds = 0
        self.moves = 0
        self.blocked = 0
        self.idle = 0
        self.reveals = 0
        self.reanchors = 0
        self.select_s = 0.0
        self.apply_s = 0.0
        self.observe_s = 0.0
        self._reanchor_seen = 0

    # ------------------------------------------------------------------
    def on_attach(self, state: RoundState) -> None:
        """Reset the per-run counters (the registry accumulates)."""
        self._reset_run()

    def on_phase_times(
        self, select_s: float, apply_s: float, observe_s: float
    ) -> None:
        """Accumulate one round's phase durations into the histograms."""
        self.select_s += select_s
        self.apply_s += apply_s
        self.observe_s += observe_s
        self._phase_hist.observe(select_s, phase="select")
        self._phase_hist.observe(apply_s, phase="apply")
        self._phase_hist.observe(observe_s, phase="observe")

    def on_round(self, state: RoundState, record: RoundRecord) -> None:
        """Fold one :class:`RoundRecord` into the counters."""
        self.rounds += 1
        self.billed_rounds = record.billed
        moves = record.moves
        movers = 0
        if isinstance(moves, dict):
            for agent, move in moves.items():
                if not _is_mover(move):
                    continue
                if agent in record.struck:
                    self.blocked += 1
                else:
                    movers += 1
        self.moves += movers
        team = state.team()
        if team is not None and record.billed > record.billed_before:
            self.idle += len(team) - movers
        events = record.events
        if events is not None:
            try:
                self.reveals += len(events)
            except TypeError:
                pass
        metrics = getattr(getattr(state, "expl", None), "metrics", None)
        if metrics is not None:
            total = len(metrics.reanchors)
            self.reanchors += total - self._reanchor_seen
            self._reanchor_seen = total
        if self.rounds % self.every == 0:
            self._flush(record.t + 1, final=False)

    def on_stop(self, state: RoundState, outcome: RunOutcome) -> None:
        """Flush the final cumulative ``round`` event and the gauges.

        Asynchronous runs publish their per-robot clock on the state
        (:class:`~repro.sim.scheduler.AsyncClock`); when present, its
        summary goes out as one ``clock`` event so trace readers
        (``repro tail``) can attribute wall time to the slowest robot.
        """
        self.billed_rounds = outcome.billed_rounds
        counters = self.registry.counter(
            "run_totals", "cumulative per-run engine counters"
        )
        for key, value in self.snapshot().items():
            if isinstance(value, (int, float)):
                counters.inc(float(value), field=key)
        self._flush(outcome.wall_rounds, final=True)
        clock = getattr(state, "clock", None)
        if clock is not None and hasattr(clock, "summary"):
            self.writer.emit(
                "clock",
                span_id=self.span_id,
                fingerprint=self.fingerprint,
                label=self.label,
                data=clock.summary(),
            )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat cumulative counters (merged into orchestrator rows)."""
        return {
            "rounds": self.rounds,
            "billed_rounds": self.billed_rounds,
            "moves": self.moves,
            "blocked": self.blocked,
            "idle": self.idle,
            "reveals": self.reveals,
            "reanchors": self.reanchors,
            "select_s": round(self.select_s, 6),
            "apply_s": round(self.apply_s, 6),
            "observe_s": round(self.observe_s, 6),
        }

    def _flush(self, wall_round: int, final: bool) -> None:
        data = self.snapshot()
        data["wall_round"] = wall_round
        data["final"] = final
        self.writer.emit(
            "round",
            span_id=self.span_id,
            fingerprint=self.fingerprint,
            label=self.label,
            data=data,
        )


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelSet",
    "Metric",
    "MetricsObserver",
    "MetricsRegistry",
]
