"""Live theorem-budget monitoring: the paper's proofs as runtime checks.

The paper's guarantees bound quantities that the engine can measure
*while a run is in flight*: Theorem 1 bounds the billed rounds of BFDN
(``2n/k + D^2 (min(log Delta, log k) + 3)``), Lemma 2 bounds the
re-anchors at any interior depth (``k (min(log Delta, log k) + 3)``),
Theorem 3 bounds the urn game's steps and Proposition 9 the graph
engine's rounds.  Historically these were checked after a run finished;
:class:`BudgetObserver` turns each into a per-round margin series and a
structured ``violation`` telemetry event emitted at the exact round a
bound is crossed.

:func:`budgets_for_scenario` derives the applicable guards from a built
scenario: plain BFDN variants on adversary-free tree scenarios get the
Theorem 1 and Lemma 2 budgets, the fixed-``ell`` recursive entries the
Theorem 10 budget, the follow-up algorithms their literature bounds
(``tree-mining`` — Theorem 10 at the uniform mining depth,
arXiv:2309.07011; ``potential-cte`` — ``2n/k + C D^2``,
arXiv:2311.01354), async-tree scenarios the asynchronous completion-time
budget (``async-cte`` — ``2n/k + C D^2`` in per-robot clock time,
arXiv:2507.15658), graph scenarios the Proposition 9 budget, game
scenarios the Theorem 3 budget.  Algorithms the paper proves nothing
about (``cte``, ``dfs``) get no guard — a budget is an assertion, not a
comparison.
"""

from __future__ import annotations

import logging
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..sim.runloop import RoundObserver, RoundRecord, RoundState, RunOutcome
from .writer import NullWriter

logger = logging.getLogger(__name__)

#: Tree algorithms Theorem 1 / Lemma 2 are proved for (BFDN and the
#: variants that preserve its re-anchoring structure).
THEOREM1_ALGORITHMS = frozenset(
    {"bfdn", "bfdn-wr", "bfdn-shortcut", "bfdn-checked"}
)

#: Fixed-recursion-depth BFDN_ell entries, monitored against Theorem 10
#: at their declared ``ell``.
THEOREM10_ALGORITHMS = {"bfdn-ell2": 2, "bfdn-ell3": 3}


@dataclass(frozen=True)
class Budget:
    """One monitored bound: a limit and a per-round value function."""

    #: Stable identifier ("theorem1", "lemma2", "theorem3", "proposition9").
    name: str
    limit: float
    #: Measures the bounded quantity after each round.
    value: Callable[[RoundState, RoundRecord], float]
    description: str = ""


@dataclass(frozen=True)
class BudgetViolation:
    """A bound was crossed at wall-clock round ``t``."""

    budget: str
    t: int
    value: float
    limit: float

    @property
    def margin(self) -> float:
        """``limit - value`` (negative by construction)."""
        return self.limit - self.value


@dataclass
class MarginSample:
    """One point of a budget's running margin series."""

    t: int
    value: float
    margin: float


class BudgetObserver(RoundObserver):
    """Compares live run quantities against theorem budgets every round.

    Per round, every budget's value is measured and its margin
    (``limit - value``) updated; every ``every`` rounds — and once at
    termination — a ``budget`` telemetry event with the full margin
    vector is emitted.  The first time a margin goes negative the
    observer emits a ``violation`` event *immediately* (same round, not
    at flush time) and records it in :attr:`violations`; each budget
    fires at most once per run.
    """

    def __init__(
        self,
        budgets: List[Budget],
        writer=None,
        span_id: str = "",
        fingerprint: str = "",
        label: str = "",
        every: int = 100,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.budgets = list(budgets)
        self.writer = writer if writer is not None else NullWriter()
        self.span_id = span_id
        self.fingerprint = fingerprint
        self.label = label
        self.every = every
        self._reset_run()

    def _reset_run(self) -> None:
        self.violations: List[BudgetViolation] = []
        self.series: Dict[str, List[MarginSample]] = {
            budget.name: [] for budget in self.budgets
        }
        self._fired: set = set()
        self._latest: Dict[str, MarginSample] = {}

    # ------------------------------------------------------------------
    def on_attach(self, state: RoundState) -> None:
        """Reset the margin series for a fresh run."""
        self._reset_run()

    def on_round(self, state: RoundState, record: RoundRecord) -> None:
        """Measure every budget and fire violations the moment they occur."""
        sample_round = (record.t + 1) % self.every == 0
        for budget in self.budgets:
            value = float(budget.value(state, record))
            margin = budget.limit - value
            sample = MarginSample(t=record.t, value=value, margin=margin)
            self._latest[budget.name] = sample
            if sample_round:
                self.series[budget.name].append(sample)
            if margin < 0 and budget.name not in self._fired:
                self._fired.add(budget.name)
                violation = BudgetViolation(
                    budget=budget.name, t=record.t, value=value,
                    limit=budget.limit,
                )
                self.violations.append(violation)
                logger.warning(
                    "budget violation: %s value %.1f exceeds limit %.1f "
                    "at round %d (%s)", budget.name, value, budget.limit,
                    record.t, self.label or "unlabelled run",
                )
                self.writer.emit(
                    "violation",
                    span_id=self.span_id,
                    fingerprint=self.fingerprint,
                    label=self.label,
                    data={
                        "budget": budget.name,
                        "t": record.t,
                        "value": value,
                        "limit": round(budget.limit, 3),
                        "margin": round(margin, 3),
                        "description": budget.description,
                    },
                )
        if sample_round and self.budgets:
            self._flush(record.t, final=False)

    def on_stop(self, state: RoundState, outcome: RunOutcome) -> None:
        """Record the terminal margins and flush the final budget event."""
        for budget in self.budgets:
            latest = self._latest.get(budget.name)
            if latest is not None:
                samples = self.series[budget.name]
                if not samples or samples[-1].t != latest.t:
                    samples.append(latest)
        if self.budgets:
            self._flush(outcome.wall_rounds, final=True)

    # ------------------------------------------------------------------
    def margins(self) -> Dict[str, float]:
        """The latest margin per budget (``limit`` before any round)."""
        out: Dict[str, float] = {}
        for budget in self.budgets:
            latest = self._latest.get(budget.name)
            out[budget.name] = latest.margin if latest is not None else budget.limit
        return out

    def min_margin(self, name: Optional[str] = None) -> float:
        """The tightest margin seen so far (optionally for one budget)."""
        candidates = [
            sample.margin
            for budget_name, samples in self.series.items()
            if name is None or budget_name == name
            for sample in samples
        ]
        latest = [
            sample.margin
            for budget_name, sample in self._latest.items()
            if name is None or budget_name == name
        ]
        pool = candidates + latest
        return min(pool) if pool else float("inf")

    def snapshot(self) -> Dict[str, Any]:
        """Flat summary (merged into orchestrator result rows)."""
        out: Dict[str, Any] = {"violations": len(self.violations)}
        for budget in self.budgets:
            out[f"margin_{budget.name}"] = round(
                self.min_margin(budget.name), 3
            )
        return out

    def _flush(self, wall_round: int, final: bool) -> None:
        self.writer.emit(
            "budget",
            span_id=self.span_id,
            fingerprint=self.fingerprint,
            label=self.label,
            data={
                "wall_round": wall_round,
                "final": final,
                "margins": {
                    name: round(margin, 3)
                    for name, margin in self.margins().items()
                },
                "violations": len(self.violations),
            },
        )


# ---------------------------------------------------------------------
# Deriving the applicable budgets from a scenario
# ---------------------------------------------------------------------

def _billed(state: RoundState, record: RoundRecord) -> float:
    return float(record.billed)


def _clock_completion(state: RoundState, record: RoundRecord) -> float:
    """The async completion time (the quantity the async bound caps).

    Asynchronous runs publish an :class:`~repro.sim.scheduler.AsyncClock`
    on the state; the bound holds for the time of the last *progressing*
    traversal, not the batch count.  Falls back to the billed batches
    when no clock is attached (a sync run of an async algorithm).
    """
    clock = getattr(state, "clock", None)
    if clock is not None:
        return float(clock.completion_time)
    return float(record.billed)


@dataclass
class _InteriorReanchors:
    """Incrementally tracks the max re-anchor count over interior depths.

    Lemma 2 bounds re-anchors at every depth; like the result rows, only
    interior depths ``1 <= d <= D - 1`` are held to the bound (depth-0
    anchors are the root, depth-``D`` anchors have no subtree to split).
    """

    max_depth: int
    _seen: int = 0
    _per_depth: TallyCounter = field(default_factory=TallyCounter)
    _worst: int = 0

    def __call__(self, state: RoundState, record: RoundRecord) -> float:
        metrics = getattr(getattr(state, "expl", None), "metrics", None)
        if metrics is None:
            return 0.0
        records = metrics.reanchors
        for rec in records[self._seen:]:
            if 1 <= rec.depth <= self.max_depth - 1:
                self._per_depth[rec.depth] += 1
                if self._per_depth[rec.depth] > self._worst:
                    self._worst = self._per_depth[rec.depth]
        self._seen = len(records)
        return float(self._worst)


def budgets_for_scenario(built) -> List[Budget]:
    """The theorem budgets applicable to one built scenario.

    ``built`` is a :class:`~repro.scenario.BuiltScenario`; the guards
    mirror the paper's hypotheses, so scenarios outside them (CTE, DFS,
    adversarial runs whose accounting is Proposition 7's, not
    Theorem 1's) return an empty list rather than a vacuous check.
    """
    from ..bounds.guarantees import (
        bfdn_bound,
        bfdn_ell_bound,
        lemma2_bound,
        potential_cte_bound,
        theorem3_bound,
        tree_mining_bound,
        tree_mining_ell,
    )

    spec = built.spec
    budgets: List[Budget] = []
    if spec.kind == "tree" and spec.adversary is None:
        if spec.algorithm in THEOREM1_ALGORITHMS:
            tree = built.tree
            budgets.append(
                Budget(
                    name="theorem1",
                    limit=bfdn_bound(tree.n, tree.depth, spec.k, tree.max_degree),
                    value=_billed,
                    description="2n/k + D^2 (min(log Delta, log k) + 3) rounds",
                )
            )
            budgets.append(
                Budget(
                    name="lemma2",
                    limit=lemma2_bound(spec.k, tree.max_degree),
                    value=_InteriorReanchors(max_depth=tree.depth),
                    description="k (min(log Delta, log k) + 3) re-anchors "
                    "at any interior depth",
                )
            )
        elif spec.algorithm in THEOREM10_ALGORITHMS:
            tree = built.tree
            ell = THEOREM10_ALGORITHMS[spec.algorithm]
            budgets.append(
                Budget(
                    name="theorem10",
                    limit=bfdn_ell_bound(
                        tree.n, tree.depth, spec.k, ell, tree.max_degree
                    ),
                    value=_billed,
                    description=f"4n/k^(1/{ell}) + 2^{ell + 1} "
                    f"(ell + 1 + min(log Delta, log k / ell)) D^(1+1/{ell}) "
                    "rounds (Theorem 10)",
                )
            )
        elif spec.algorithm == "tree-mining":
            tree = built.tree
            budgets.append(
                Budget(
                    name="tree-mining",
                    limit=tree_mining_bound(
                        tree.n, tree.depth, spec.k, tree.max_degree
                    ),
                    value=_billed,
                    description="Theorem 10 at the uniform mining depth "
                    f"ell(k)={tree_mining_ell(spec.k)}: "
                    "4n/2^sqrt(log2 k) + additive term (arXiv:2309.07011)",
                )
            )
        elif spec.algorithm == "potential-cte":
            tree = built.tree
            budgets.append(
                Budget(
                    name="potential-cte",
                    limit=potential_cte_bound(tree.n, tree.depth, spec.k),
                    value=_billed,
                    description="2n/k + C D^2 rounds (arXiv:2311.01354; "
                    "implementation-pinned C)",
                )
            )
    elif spec.kind == "async-tree" and spec.algorithm == "async-cte":
        from ..bounds.guarantees import async_cte_bound

        tree = built.tree
        budgets.append(
            Budget(
                name="async-cte",
                limit=async_cte_bound(tree.n, tree.depth, spec.k),
                value=_clock_completion,
                description="2n/k + C D^2 completion time under any speed "
                "schedule (arXiv:2507.15658; implementation-pinned C)",
            )
        )
    elif spec.kind == "graph":
        from ..graphs.exploration import proposition9_bound

        graph = built.graph
        budgets.append(
            Budget(
                name="proposition9",
                limit=proposition9_bound(
                    graph.num_edges, graph.radius, spec.k, graph.max_degree
                ),
                value=_billed,
                description="Proposition 9 graph-exploration rounds",
            )
        )
    elif spec.kind == "game":
        budgets.append(
            Budget(
                name="theorem3",
                limit=theorem3_bound(spec.k, built.delta),
                value=_billed,
                description="k min(log Delta, log k) + 2k urn-game steps",
            )
        )
    return budgets


__all__ = [
    "Budget",
    "BudgetObserver",
    "BudgetViolation",
    "MarginSample",
    "THEOREM1_ALGORITHMS",
    "THEOREM10_ALGORITHMS",
    "budgets_for_scenario",
]
