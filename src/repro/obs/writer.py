"""Append-only JSONL event log, safe for multi-process sweeps.

:class:`TelemetryWriter` serialises each :class:`~repro.obs.schema.
TelemetryEvent` as one JSON line and appends it to a single per-trace
file.  Worker processes open their *own* writer on the same path (the
picklable :class:`TelemetryConfig` travels to them, never a file
handle); every event is written in one unbuffered ``write`` call in
append mode, so lines from concurrent processes interleave whole, never
torn.

:class:`NullWriter` is the zero-overhead default: it satisfies the same
interface and does nothing, so instrumented code never branches on
"telemetry enabled?" in its hot path.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from .schema import TelemetryEvent, new_trace_id

logger = logging.getLogger(__name__)


def telemetry_path(dir_or_file: str, trace_id: str) -> str:
    """Resolve a ``--telemetry`` argument to a concrete JSONL path.

    A path ending in ``.jsonl`` is used verbatim; anything else is
    treated as a directory (created on demand by the writer) holding one
    ``trace-<id>.jsonl`` file per sweep.
    """
    if dir_or_file.endswith(".jsonl"):
        return dir_or_file
    return os.path.join(dir_or_file, f"trace-{trace_id}.jsonl")


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything a worker process needs to join a trace's event log.

    Picklable by construction — it crosses the worker-pool boundary
    inside job payloads.  ``round_every`` paces per-round ``round`` and
    ``budget`` events (1 = every engine round).
    """

    path: str
    trace_id: str
    round_every: int = 100

    def __post_init__(self) -> None:
        if self.round_every < 1:
            raise ValueError("round_every must be >= 1")

    @classmethod
    def create(cls, dir_or_file: str, round_every: int = 100) -> "TelemetryConfig":
        """A fresh config with a new trace id under ``dir_or_file``."""
        trace_id = new_trace_id()
        return cls(
            path=telemetry_path(dir_or_file, trace_id),
            trace_id=trace_id,
            round_every=round_every,
        )

    def open(self) -> "TelemetryWriter":
        """Open a writer for this trace (one per process)."""
        return TelemetryWriter(self.path, self.trace_id)


class NullWriter:
    """The do-nothing default writer; keeps uninstrumented runs free."""

    trace_id = ""
    path = ""

    def write(self, event: TelemetryEvent) -> None:
        """Discard the event."""

    def emit(self, event: str, **kwargs: Any) -> None:
        """Discard the event without even constructing it."""

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "NullWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TelemetryWriter:
    """Appends telemetry events to one JSONL file.

    The file is opened lazily on the first event and every line is
    flushed through a single unbuffered write, so a crashed worker loses
    at most the event it was writing and concurrent appenders do not
    tear each other's lines.
    """

    def __init__(self, path: str, trace_id: Optional[str] = None):
        self.path = path
        self.trace_id = trace_id or new_trace_id()
        self._file = None
        self._seq = 0

    def _ensure_open(self):
        if self._file is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            # Unbuffered binary append: one write syscall per event line.
            self._file = open(self.path, "ab", buffering=0)
            logger.debug("telemetry: appending to %s (trace %s)",
                         self.path, self.trace_id)
        return self._file

    def write(self, event: TelemetryEvent) -> None:
        """Append one already-built event (its ids are kept verbatim)."""
        self._seq += 1
        self._ensure_open().write((event.to_json() + "\n").encode("utf-8"))

    def emit(self, event: str, **kwargs: Any) -> TelemetryEvent:
        """Build an event stamped with this writer's trace id and the
        next sequence number, write it, and return it."""
        record = TelemetryEvent(
            event=event, trace_id=self.trace_id, seq=self._seq + 1, **kwargs
        )
        self.write(record)
        return record

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_events(path: str) -> Iterator[TelemetryEvent]:
    """Iterate the events of one JSONL telemetry file.

    Blank lines are skipped; a torn/corrupt trailing line (interrupted
    writer) is ignored with a warning rather than aborting the read.
    """
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield TelemetryEvent.from_json(line)
            except (ValueError, KeyError) as exc:
                logger.warning("telemetry: skipping bad line %s:%d (%s)",
                               path, lineno, exc)


def load_trace(dir_or_file: str) -> List[TelemetryEvent]:
    """Load every event under a telemetry directory or file, in order.

    Directories may hold several ``trace-*.jsonl`` files (one per
    sweep); events are concatenated file-by-file and ordered by
    ``(trace_id, ts, seq)`` so interleaved worker appends read coherently.
    """
    paths: List[str] = []
    if os.path.isdir(dir_or_file):
        for name in sorted(os.listdir(dir_or_file)):
            if name.endswith(".jsonl"):
                paths.append(os.path.join(dir_or_file, name))
    else:
        paths.append(dir_or_file)
    events: List[TelemetryEvent] = []
    for path in paths:
        events.extend(read_events(path))
    events.sort(key=lambda ev: (ev.trace_id, ev.ts, ev.seq))
    return events


__all__ = [
    "NullWriter",
    "TelemetryConfig",
    "TelemetryWriter",
    "load_trace",
    "read_events",
    "telemetry_path",
]
