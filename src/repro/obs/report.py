"""Comparative cost reporting: the ``repro report`` command.

Reads any result cache (the orchestrator's content-addressed store)
and/or telemetry directory, pivots the rows into an **algorithm ×
family × size** matrix of throughput (rounds/sec), CPU seconds per run,
peak RSS, joules (where a RAPL probe could measure them) and
theorem-budget margins, and renders the matrix as

* a diff-friendly markdown table (via
  :func:`repro.analysis.report.render_markdown_table` — numeric columns
  right-aligned, fixed widths), and
* a self-contained HTML page (inline CSS, no external assets).

``compare_reports`` diffs two such matrices — two cache dirs, two
telemetry dirs, or one of each — with regression annotations in the
style of ``repro bench --compare``: throughput drops and CPU growth
beyond the threshold are flagged, and the CLI exits non-zero when any
survive.

Energy renders ``n/a`` whenever no probe read it: absence of a counter
must never be confused with zero joules.
"""

from __future__ import annotations

import html as _html
import logging
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.report import render_markdown_table
from .tail import summarize
from .writer import load_trace

logger = logging.getLogger(__name__)

#: Sweep labels look like ``random-n200`` or ``random-n200-s3``; the
#: family is everything before the size suffix.
_LABEL_RE = re.compile(r"^(?P<family>.+?)-n\d+(?:-s\d+)?$")

#: The matrix columns, in render order.
MATRIX_COLUMNS = (
    "algorithm", "family", "n", "k", "runs", "rounds",
    "rounds_per_sec", "cpu_sec", "max_rss_kb", "energy_j", "margin",
)


def family_of(label: str, kind: str = "") -> str:
    """The workload family encoded in a sweep label (fallback: label)."""
    match = _LABEL_RE.match(label or "")
    if match:
        return match.group("family")
    return label or kind or "?"


def _margin_of(row: Dict[str, Any]) -> Optional[float]:
    """One number for "how much theorem budget was left" (rounds).

    Prefers the live ``margin_*`` columns the budget observer folds into
    telemetry-instrumented rows (min across budgets); falls back to
    ``bound - rounds`` for rows that carried a computed bound
    (``compute_bounds=True``) but ran uninstrumented.
    """
    margins = [
        float(v) for k, v in row.items()
        if k.startswith("margin_") and isinstance(v, (int, float))
    ]
    if margins:
        return min(margins)
    for bound_key in ("bfdn_bound", "async_bound", "adversarial_bound"):
        bound = row.get(bound_key)
        rounds = row.get("rounds")
        if isinstance(bound, (int, float)) and isinstance(rounds, (int, float)):
            return float(bound) - float(rounds)
    return None


@dataclass
class _Cell:
    """Accumulator for one (algorithm, family, n, k) matrix cell."""

    rounds: List[float] = field(default_factory=list)
    rps: List[float] = field(default_factory=list)
    cpu: List[float] = field(default_factory=list)
    rss: List[int] = field(default_factory=list)
    energy: List[float] = field(default_factory=list)
    margins: List[float] = field(default_factory=list)

    def add(self, row: Dict[str, Any]) -> None:
        if isinstance(row.get("rounds"), (int, float)):
            self.rounds.append(float(row["rounds"]))
        if isinstance(row.get("rounds_per_sec"), (int, float)):
            self.rps.append(float(row["rounds_per_sec"]))
        if isinstance(row.get("cpu_sec"), (int, float)):
            self.cpu.append(float(row["cpu_sec"]))
        if isinstance(row.get("max_rss_kb"), (int, float)):
            self.rss.append(int(row["max_rss_kb"]))
        if isinstance(row.get("energy_j"), (int, float)):
            self.energy.append(float(row["energy_j"]))
        margin = _margin_of(row)
        if margin is not None:
            self.margins.append(margin)


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def rows_from_cache(cache_dir: str) -> List[Dict[str, Any]]:
    """Every current-schema row in a result cache."""
    from ..orchestrator.store import ResultStore

    store = ResultStore(cache_dir)
    rows = []
    for fingerprint in store.fingerprints():
        row = store.get(fingerprint)
        if row is not None:
            rows.append(dict(row))
    return rows


def rows_from_telemetry(telemetry_dir: str) -> List[Dict[str, Any]]:
    """Pseudo-rows reconstructed from a telemetry trace.

    One row per closed job span, carrying what the events recorded:
    algorithm/size from ``run_start``, rounds and rate from the span,
    resource columns from the ``resource`` event, margins from the last
    ``budget`` sample.
    """
    summary = summarize(load_trace(telemetry_dir))
    rows: List[Dict[str, Any]] = []
    for span in summary.spans.values():
        if span.span_id == span.trace_id or span.start_ts is None:
            continue  # the sweep-level span, or never actually started
        meta = span.meta
        res = span.resources
        row: Dict[str, Any] = {
            "algorithm": meta.get("algorithm", span.label or "?"),
            "label": span.label,
            "kind": meta.get("kind", ""),
            "n": meta.get("size", 0),
            "k": meta.get("k", 0),
            "rounds": span.rounds,
            "rounds_per_sec": round(span.rounds_per_sec, 1),
        }
        for key in ("cpu_s", "max_rss_kb", "energy_j"):
            value = res.get(key)
            if isinstance(value, (int, float)):
                row["cpu_sec" if key == "cpu_s" else key] = value
        for name, value in span.margins.items():
            row[f"margin_{name}"] = value
        rows.append(row)
    return rows


def build_matrix(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Pivot result rows into sorted algorithm × family × size rows.

    Aggregation per cell: mean rounds / rounds-per-sec / CPU / energy
    across runs (seeds), max peak RSS, min budget margin — the
    pessimistic reading for the two columns where the worst run is the
    claim.  Missing measurements render ``n/a``.
    """
    cells: Dict[Tuple[str, str, int, int], _Cell] = {}
    for row in rows:
        key = (
            str(row.get("algorithm", "?")),
            family_of(str(row.get("label", "")), str(row.get("kind", ""))),
            int(row.get("n", 0) or 0),
            int(row.get("k", 0) or 0),
        )
        cells.setdefault(key, _Cell()).add(row)
    out: List[Dict[str, Any]] = []
    for (algorithm, family, n, k) in sorted(cells):
        cell = cells[(algorithm, family, n, k)]
        runs = max(
            len(cell.rounds), len(cell.rps), len(cell.cpu), len(cell.rss), 1
        )
        mean_rounds = _mean(cell.rounds)
        mean_rps = _mean(cell.rps)
        mean_cpu = _mean(cell.cpu)
        mean_energy = _mean(cell.energy)
        out.append({
            "algorithm": algorithm,
            "family": family,
            "n": n,
            "k": k,
            "runs": runs,
            "rounds": round(mean_rounds, 1) if mean_rounds is not None else "n/a",
            "rounds_per_sec": (
                round(mean_rps, 1) if mean_rps is not None else "n/a"
            ),
            "cpu_sec": round(mean_cpu, 4) if mean_cpu is not None else "n/a",
            "max_rss_kb": max(cell.rss) if cell.rss else "n/a",
            "energy_j": (
                round(mean_energy, 3) if mean_energy is not None else "n/a"
            ),
            "margin": round(min(cell.margins), 1) if cell.margins else "n/a",
        })
    return out


def collect_matrix(
    cache_dir: Optional[str] = None, telemetry_dir: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Load rows from whichever sources were given and pivot them.

    When both sources are given, cache rows win per (algorithm, family,
    size, k) cell — they are the durable record; telemetry fills in
    cells the cache has never seen (e.g. ``--no-cache`` sweeps).
    """
    if cache_dir is None and telemetry_dir is None:
        raise ValueError("report needs a --cache-dir and/or a --telemetry dir")
    cache_rows = rows_from_cache(cache_dir) if cache_dir else []
    tele_rows = rows_from_telemetry(telemetry_dir) if telemetry_dir else []
    if not cache_rows:
        return build_matrix(tele_rows)
    if not tele_rows:
        return build_matrix(cache_rows)
    matrix = build_matrix(cache_rows)
    seen = {(r["algorithm"], r["family"], r["n"], r["k"]) for r in matrix}
    extra = [
        r for r in build_matrix(tele_rows)
        if (r["algorithm"], r["family"], r["n"], r["k"]) not in seen
    ]
    merged = matrix + extra
    merged.sort(key=lambda r: (r["algorithm"], r["family"], r["n"], r["k"]))
    return merged


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------

def render_markdown(
    matrix: Sequence[Dict[str, Any]], title: str = "Resource report"
) -> str:
    """The matrix as a markdown document (table + measurement notes)."""
    lines = [f"# {title}", ""]
    if not matrix:
        lines.append("_no rows — empty cache/telemetry input_")
        return "\n".join(lines)
    lines.append(render_markdown_table(list(matrix), MATRIX_COLUMNS))
    lines.append("")
    measured = sum(1 for r in matrix if r.get("energy_j") != "n/a")
    if measured:
        lines.append(
            f"energy: RAPL package counters, {measured}/{len(matrix)} "
            "cells measured."
        )
    else:
        lines.append(
            "energy: n/a — no readable RAPL domain on this host "
            "(non-Linux, container, or unprivileged)."
        )
    lines.append(
        "cpu_sec/rounds_per_sec are means across runs; max_rss_kb is the "
        "peak across runs; margin is the *minimum* theorem-budget "
        "headroom in rounds (n/a = no budget applies)."
    )
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #c9c9d9; padding: 0.3rem 0.6rem;
         font-variant-numeric: tabular-nums; }
th { background: #eef; text-align: center; }
td.num { text-align: right; }
td.txt { text-align: left; }
td.na { color: #999; text-align: center; }
tr:nth-child(even) td { background: #f7f7fc; }
p.note { color: #555; font-size: 0.85rem; max-width: 48rem; }
"""


def render_html(
    matrix: Sequence[Dict[str, Any]], title: str = "Resource report"
) -> str:
    """The matrix as one self-contained HTML page (no external assets)."""
    rows_html: List[str] = []
    for row in matrix:
        cells = []
        for col in MATRIX_COLUMNS:
            value = row.get(col, "n/a")
            if value == "n/a":
                cells.append('<td class="na">n/a</td>')
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                cells.append(f'<td class="num">{value}</td>')
            else:
                cells.append(f'<td class="txt">{_html.escape(str(value))}</td>')
        rows_html.append("<tr>" + "".join(cells) + "</tr>")
    header = "".join(f"<th>{_html.escape(c)}</th>" for c in MATRIX_COLUMNS)
    body = "\n".join(rows_html) if rows_html else (
        f'<tr><td class="na" colspan="{len(MATRIX_COLUMNS)}">no rows</td></tr>'
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>{_HTML_STYLE}</style>
</head>
<body>
<h1>{_html.escape(title)}</h1>
<table>
<thead><tr>{header}</tr></thead>
<tbody>
{body}
</tbody>
</table>
<p class="note">rounds_per_sec / cpu_sec are per-run means; max_rss_kb
is the peak across runs; margin is the minimum theorem-budget headroom
(rounds).  energy_j is RAPL package energy — <em>n/a</em> means no
counter was readable, not zero joules.</p>
</body>
</html>
"""


# ---------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class CellDelta:
    """Old-vs-new cost of one matrix cell."""

    key: Tuple[str, str, int, int]
    metric: str
    old: float
    new: float

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old > 0 else float("inf")


def compare_reports(
    old: Sequence[Dict[str, Any]],
    new: Sequence[Dict[str, Any]],
    threshold: float = 0.2,
) -> Tuple[List[str], List[CellDelta]]:
    """Diff two matrices; returns report lines and surviving regressions.

    A cell regresses when throughput (``rounds_per_sec``) drops, or CPU
    per run grows, by more than ``threshold`` (0.2 = 20%).  Cells
    present on only one side are reported but never gate.  Energy and
    RSS deltas are annotated for information only — RSS is a
    process-lifetime high-water mark and energy availability varies by
    host, so neither is a stable gate.
    """
    def keyed(matrix):
        return {
            (r["algorithm"], r["family"], r["n"], r["k"]): r for r in matrix
        }

    old_cells, new_cells = keyed(old), keyed(new)
    lines: List[str] = []
    regressions: List[CellDelta] = []
    for key in sorted(new_cells):
        name = "{}/{}-n{}-k{}".format(*key)
        after = new_cells[key]
        before = old_cells.get(key)
        if before is None:
            lines.append(f"{name}: new cell")
            continue
        tags: List[str] = []
        for metric, bad_direction in (
            ("rounds_per_sec", "down"), ("cpu_sec", "up"),
        ):
            o, n = before.get(metric), after.get(metric)
            if not isinstance(o, (int, float)) or not isinstance(n, (int, float)):
                continue
            if o <= 0:
                continue
            delta = CellDelta(key, metric, float(o), float(n))
            ratio = delta.ratio
            regressed = (
                ratio < 1.0 / (1.0 + threshold) if bad_direction == "down"
                else ratio > 1.0 + threshold
            )
            improved = (
                ratio > 1.0 + threshold if bad_direction == "down"
                else ratio < 1.0 / (1.0 + threshold)
            )
            line = f"{metric} {o:g} -> {n:g} ({(ratio - 1) * 100:+.1f}%)"
            if regressed:
                line += f"  REGRESSION (> {threshold:.0%})"
                regressions.append(delta)
            elif improved:
                line += "  improved"
            tags.append(line)
        for metric in ("max_rss_kb", "energy_j"):
            o, n = before.get(metric), after.get(metric)
            if isinstance(o, (int, float)) and isinstance(n, (int, float)) and o:
                tags.append(
                    f"{metric} {o:g} -> {n:g} ({(n / o - 1) * 100:+.1f}%)"
                )
        lines.append(f"{name}: " + ("; ".join(tags) if tags else "no data"))
    for key in sorted(set(old_cells) - set(new_cells)):
        lines.append("{}/{}-n{}-k{}: removed".format(*key))
    return lines, regressions


__all__ = [
    "MATRIX_COLUMNS",
    "CellDelta",
    "build_matrix",
    "collect_matrix",
    "compare_reports",
    "family_of",
    "render_html",
    "render_markdown",
    "rows_from_cache",
    "rows_from_telemetry",
]
