"""Resource accounting: CPU, peak RSS, GC and energy per bracketed run.

:class:`ResourceSampler` brackets a region of work — one engine run, one
orchestrator job, one server lifetime — and produces a
:class:`ResourceSample` with ``resource.getrusage``-based CPU time
(user/sys split), the peak-RSS high-water mark and its delta across the
region, garbage-collection counts, wall time and (where the host exposes
it) RAPL package energy in joules.

Energy is pluggable behind the :class:`EnergyProbe` protocol.  The stock
:class:`RaplEnergyProbe` reads the Linux powercap sysfs counters
(``/sys/class/powercap/intel-rapl:*/energy_uj``), corrects for counter
wraparound via ``max_energy_range_uj``, and degrades to *unavailable*
(``energy_j = None``) on non-Linux hosts, in containers that hide
powercap, or when the files are root-only — so CI stays green and report
surfaces render ``n/a`` instead of failing.

Samples ride the telemetry stream as ``resource`` events (additive to
``repro-telemetry-v1``) and the orchestrator result rows as the
``cpu_sec`` / ``max_rss_kb`` / ``energy_j`` columns (schema v4).
Sampling is two syscalls plus a handful of file reads per *run* (never
per round), so the measured overhead stays well under the 5% CI gate;
``REPRO_NO_RESOURCE_SAMPLING=1`` disables it outright for A/B overhead
measurements.
"""

from __future__ import annotations

import gc
import logging
import os
import re
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

try:  # POSIX only; Windows runs with the degraded process_time fallback.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX host
    _resource = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: Set to ``1`` to turn every sampler into a no-op (used by the CI
#: sampler-overhead guard to get an uninstrumented baseline).
RESOURCE_SAMPLING_ENV = "REPRO_NO_RESOURCE_SAMPLING"

#: Top-level RAPL package domains look like ``intel-rapl:0``; their
#: sub-domains (``intel-rapl:0:0`` — core, uncore, dram) are *parts* of
#: the package counter, so reading only the packages avoids double
#: counting.
_RAPL_PACKAGE_RE = re.compile(r"^intel-rapl:\d+$")


def sampling_enabled() -> bool:
    """Whether resource sampling is globally enabled (env kill-switch)."""
    return os.environ.get(RESOURCE_SAMPLING_ENV, "") not in ("1", "true", "yes")


@dataclass(frozen=True)
class ResourceSample:
    """One bracketed region's resource cost.

    ``max_rss_kb`` is the process peak-RSS high-water mark *at the end*
    of the region (kilobytes); ``rss_delta_kb`` is how much the region
    raised it (0 when the peak predates the region).  ``energy_j`` is
    ``None`` whenever no energy probe could read a counter — render it
    as ``n/a``, never as 0.0.
    """

    wall_s: float = 0.0
    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0
    max_rss_kb: int = 0
    rss_delta_kb: int = 0
    gc_collections: int = 0
    energy_j: Optional[float] = None
    energy_source: str = "unavailable"

    @property
    def cpu_s(self) -> float:
        """Total CPU seconds (user + system)."""
        return self.cpu_user_s + self.cpu_sys_s

    def to_data(self) -> Dict[str, Any]:
        """The ``resource`` telemetry event payload (JSON-safe)."""
        return {
            "wall_s": round(self.wall_s, 6),
            "cpu_user_s": round(self.cpu_user_s, 6),
            "cpu_sys_s": round(self.cpu_sys_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "max_rss_kb": self.max_rss_kb,
            "rss_delta_kb": self.rss_delta_kb,
            "gc_collections": self.gc_collections,
            "energy_j": (
                None if self.energy_j is None else round(self.energy_j, 6)
            ),
            "energy_source": self.energy_source,
        }

    def as_columns(self) -> Dict[str, Any]:
        """Result-row columns (orchestrator schema v4).

        ``energy_j`` is only present when a probe actually read energy,
        so cached rows stay honest about what was measured.
        """
        cols: Dict[str, Any] = {
            "cpu_sec": round(self.cpu_s, 6),
            "cpu_user_s": round(self.cpu_user_s, 6),
            "cpu_sys_s": round(self.cpu_sys_s, 6),
            "max_rss_kb": self.max_rss_kb,
        }
        if self.energy_j is not None:
            cols["energy_j"] = round(self.energy_j, 6)
        return cols


class EnergyProbe:
    """Protocol for pluggable energy meters.

    Implementations expose monotonically increasing per-domain counters
    (microjoules) via :meth:`snapshot`; :meth:`delta_j` turns two
    snapshots into joules, handling counter wraparound.  A probe that
    cannot read anything returns an empty snapshot and ``None`` deltas.
    """

    name = "unavailable"

    @property
    def available(self) -> bool:
        """Whether the probe can currently read at least one counter."""
        return False

    def snapshot(self) -> Dict[str, int]:
        """Current per-domain counter values in microjoules."""
        return {}

    def delta_j(
        self, start: Dict[str, int], end: Dict[str, int]
    ) -> Optional[float]:
        """Joules consumed between two snapshots (None if unmeasurable)."""
        return None


class NullEnergyProbe(EnergyProbe):
    """The graceful fallback: never available, never fails."""


class RaplEnergyProbe(EnergyProbe):
    """Linux powercap (RAPL) package-energy reader.

    Reads ``energy_uj`` from every top-level ``intel-rapl:N`` package
    domain under ``base_path`` (default ``/sys/class/powercap``).  The
    counters wrap at ``max_energy_range_uj``; :meth:`delta_j` corrects a
    single wrap per domain and drops domains it cannot correct.  Every
    file read tolerates ``OSError`` (missing powercap, permission-denied
    ``energy_uj`` under unprivileged users) by skipping the domain —
    the probe's worst case is "unavailable", never an exception.

    ``base_path`` is a constructor argument so tests can point the probe
    at a synthetic sysfs tree.
    """

    name = "rapl"
    DEFAULT_BASE = "/sys/class/powercap"

    def __init__(self, base_path: str = DEFAULT_BASE):
        self.base_path = base_path
        self._domains = self._discover()

    def _discover(self) -> Dict[str, str]:
        try:
            entries = sorted(os.listdir(self.base_path))
        except OSError:
            return {}
        domains: Dict[str, str] = {}
        for entry in entries:
            if not _RAPL_PACKAGE_RE.match(entry):
                continue
            domain_dir = os.path.join(self.base_path, entry)
            if os.path.isfile(os.path.join(domain_dir, "energy_uj")):
                domains[entry] = domain_dir
        return domains

    @staticmethod
    def _read_int(path: str) -> Optional[int]:
        try:
            with open(path, "r", encoding="ascii") as fh:
                return int(fh.read().strip())
        except (OSError, ValueError):
            return None

    @property
    def available(self) -> bool:
        return bool(self.snapshot())

    def snapshot(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, domain_dir in self._domains.items():
            value = self._read_int(os.path.join(domain_dir, "energy_uj"))
            if value is not None:
                out[name] = value
        return out

    def max_range_uj(self, name: str) -> Optional[int]:
        """The domain's counter wrap modulus (None when unreadable)."""
        domain_dir = self._domains.get(name)
        if domain_dir is None:
            return None
        return self._read_int(os.path.join(domain_dir, "max_energy_range_uj"))

    def delta_j(
        self, start: Dict[str, int], end: Dict[str, int]
    ) -> Optional[float]:
        total_uj = 0
        measured = False
        for name, end_uj in end.items():
            start_uj = start.get(name)
            if start_uj is None:
                continue
            delta = end_uj - start_uj
            if delta < 0:
                # The counter wrapped: it counts modulo max_energy_range_uj.
                wrap = self.max_range_uj(name)
                if not wrap:
                    continue
                delta += wrap
                if delta < 0:
                    continue
            total_uj += delta
            measured = True
        return total_uj / 1e6 if measured else None


_default_probe: Optional[EnergyProbe] = None


def default_energy_probe(refresh: bool = False) -> EnergyProbe:
    """The process-wide energy probe (RAPL if readable, else null).

    Cached after the first call so per-run sampling does not rescan
    sysfs; ``refresh=True`` forces re-discovery (tests, hotplug).
    """
    global _default_probe
    if _default_probe is None or refresh:
        probe: EnergyProbe = RaplEnergyProbe()
        if not probe.available:
            probe = NullEnergyProbe()
        _default_probe = probe
    return _default_probe


def _rusage() -> tuple:
    """(cpu_user_s, cpu_sys_s, max_rss_kb) for this process."""
    if _resource is None:  # pragma: no cover - non-POSIX host
        return (time.process_time(), 0.0, 0)
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    max_rss = int(usage.ru_maxrss)
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB on Linux
        max_rss //= 1024
    return (usage.ru_utime, usage.ru_stime, max_rss)


def _gc_collections() -> int:
    """Total GC collection passes across all generations so far."""
    try:
        return sum(int(s.get("collections", 0)) for s in gc.get_stats())
    except Exception:  # pragma: no cover - exotic interpreters
        return 0


class ResourceSampler:
    """Bracket a region of work and account for what it cost.

    Usage::

        sampler = ResourceSampler().start()
        ...  # run the engine
        sample = sampler.stop()

    or as a context manager (the sample lands on ``sampler.sample``).
    A disabled sampler (``REPRO_NO_RESOURCE_SAMPLING=1`` or
    ``enabled=False``) returns an all-zero *unavailable* sample and does
    no syscalls at all.
    """

    def __init__(
        self,
        probe: Optional[EnergyProbe] = None,
        enabled: Optional[bool] = None,
    ):
        self.probe = probe if probe is not None else default_energy_probe()
        self.enabled = sampling_enabled() if enabled is None else enabled
        self.sample: Optional[ResourceSample] = None
        self._started = False

    def start(self) -> "ResourceSampler":
        """Record the region's starting counters; returns self."""
        if not self.enabled:
            return self
        self._wall0 = time.perf_counter()
        self._cpu_user0, self._cpu_sys0, self._rss0 = _rusage()
        self._gc0 = _gc_collections()
        self._energy0 = self.probe.snapshot()
        self._started = True
        return self

    def _measure(self) -> ResourceSample:
        wall = time.perf_counter() - self._wall0
        cpu_user, cpu_sys, rss = _rusage()
        energy = self.probe.delta_j(self._energy0, self.probe.snapshot())
        return ResourceSample(
            wall_s=max(0.0, wall),
            cpu_user_s=max(0.0, cpu_user - self._cpu_user0),
            cpu_sys_s=max(0.0, cpu_sys - self._cpu_sys0),
            max_rss_kb=rss,
            rss_delta_kb=max(0, rss - self._rss0),
            gc_collections=max(0, _gc_collections() - self._gc0),
            energy_j=energy,
            energy_source=self.probe.name if energy is not None
            else "unavailable",
        )

    def peek(self) -> ResourceSample:
        """The running region's bill so far (the region stays open).

        Long-lived brackets (the serve daemon's process-lifetime
        sampler) report through this from ``/stats`` and the periodic
        ``resource`` snapshots.
        """
        if not self._started:
            return self.sample if self.sample is not None else ResourceSample()
        return self._measure()

    def stop(self) -> ResourceSample:
        """Close the region and return (and remember) its sample."""
        if not self._started:
            self.sample = ResourceSample()
            return self.sample
        self.sample = self._measure()
        self._started = False
        return self.sample

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "EnergyProbe",
    "NullEnergyProbe",
    "RESOURCE_SAMPLING_ENV",
    "RaplEnergyProbe",
    "ResourceSample",
    "ResourceSampler",
    "default_energy_probe",
    "sampling_enabled",
]
