"""The telemetry event schema: one fixed shape for every event.

Every event the telemetry layer emits — from the CLI down to individual
engine rounds inside worker processes — is a :class:`TelemetryEvent`
with the same six-kind vocabulary:

``run_start`` / ``run_end``
    Brackets one span (one simulation run, or one whole sweep when the
    ``span_id`` equals the ``trace_id``).  ``run_end`` carries the run's
    outcome summary in ``data``.
``round``
    Periodic per-round metrics flushed by
    :class:`~repro.obs.metrics.MetricsObserver` (cumulative moves,
    idles, reveals, re-anchors, interference blocks, phase times).
``span``
    A job state transition relayed from the orchestrator's
    :class:`~repro.orchestrator.events.SweepEvent` stream
    (queued/started/cache-hit/retry/timeout/done/failed).
``budget``
    A running theorem-budget margin sample from
    :class:`~repro.obs.budget.BudgetObserver`.
``violation``
    A theorem bound was crossed — the paper's guarantees as runtime
    assertions; emitted at the exact round the margin goes negative.
``request``
    One scenario request served by the ``repro serve`` daemon
    (client id, outcome source ``cache``/``dedup``/``fresh``, status,
    latency in milliseconds).
``queue``
    A periodic queue-depth/in-flight gauge sample from the server's
    bounded execution queue.
``latency``
    A periodic request-latency percentile snapshot (p50/p95/p99 per
    outcome source), rendered by ``repro tail --latency``.
``resource``
    One span's resource bill from
    :class:`~repro.obs.resources.ResourceSampler`: CPU user/sys
    seconds, peak-RSS high-water mark and delta, GC collections, wall
    time, and RAPL joules when the host exposes them (``energy_j`` is
    ``null`` when unmeasurable).  Rendered by ``repro tail
    --resources`` and pivoted by ``repro report``.

Correlation model: a *trace* is one sweep / CLI invocation
(``trace_id``), a *span* is one job or run within it (``span_id``).
Timestamps are monotonic (``time.monotonic``), so per-span durations are
meaningful even when events from several worker processes interleave in
one file.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, Iterable, Mapping, Optional

#: Event kinds, in rough lifecycle order.  The ``request``/``queue``/
#: ``latency`` trio is emitted by the serving layer (``repro serve``);
#: ``clock`` carries the per-robot clock summary of an asynchronous run
#: (times, skew, slowest robot — see ``repro.sim.scheduler.AsyncClock``);
#: additions here are backward compatible — readers skip unknown kinds.
EVENT_TYPES = (
    "run_start",
    "request",
    "round",
    "span",
    "queue",
    "latency",
    "budget",
    "violation",
    "clock",
    "resource",
    "run_end",
)

#: Schema tag written into every event; bump on incompatible changes.
TELEMETRY_SCHEMA = "repro-telemetry-v1"


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (one per sweep / CLI invocation)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 12-hex-digit span id (one per job / run)."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class TelemetryEvent:
    """One telemetry event (see the module docstring for the vocabulary).

    ``data`` holds the event-type-specific payload as a flat-ish JSON
    object; everything else is the fixed correlation envelope.
    """

    event: str
    trace_id: str
    span_id: str = ""
    #: Monotonic timestamp (``time.monotonic()`` seconds).
    ts: float = field(default_factory=monotonic)
    #: Per-writer sequence number (orders events with equal timestamps).
    seq: int = 0
    #: Scenario fingerprint of the emitting job ("" for trace-level events).
    fingerprint: str = ""
    #: Display label of the emitting job or sweep.
    label: str = ""
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.event not in EVENT_TYPES:
            raise ValueError(
                f"unknown telemetry event type {self.event!r} "
                f"(known: {', '.join(EVENT_TYPES)})"
            )
        if not self.trace_id:
            raise ValueError("telemetry events need a non-empty trace_id")
        if self.ts < 0:
            raise ValueError("telemetry timestamps must be >= 0")
        if self.seq < 0:
            raise ValueError("telemetry sequence numbers must be >= 0")
        if not isinstance(self.data, Mapping):
            raise ValueError("event data must be a mapping")
        object.__setattr__(self, "data", dict(self.data))

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-object form written to the event log."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "event": self.event,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "ts": round(self.ts, 6),
            "seq": self.seq,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        """One compact JSON line (the on-disk JSONL record)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TelemetryEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        schema = payload.get("schema", TELEMETRY_SCHEMA)
        if schema != TELEMETRY_SCHEMA:
            raise ValueError(
                f"telemetry schema {schema!r} != {TELEMETRY_SCHEMA!r}"
            )
        return cls(
            event=str(payload["event"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload.get("span_id", "")),
            ts=float(payload.get("ts", 0.0)),
            seq=int(payload.get("seq", 0)),
            fingerprint=str(payload.get("fingerprint", "")),
            label=str(payload.get("label", "")),
            data=payload.get("data", {}),
        )

    @classmethod
    def from_json(cls, line: str) -> "TelemetryEvent":
        """Rebuild an event from one JSONL line."""
        return cls.from_dict(json.loads(line))


def validate_events(events: Iterable[TelemetryEvent]) -> Optional[str]:
    """Cheap structural check of an event stream.

    Returns a human-readable problem description, or ``None`` when the
    stream is well formed: every ``run_start`` span also ends, and no
    span ends without starting.
    """
    started: Dict[str, str] = {}
    ended: Dict[str, str] = {}
    for ev in events:
        key = (ev.trace_id, ev.span_id)
        if ev.event == "run_start":
            started[key] = ev.label
        elif ev.event == "run_end":
            if key not in started:
                return f"span {ev.span_id!r} ends without a run_start"
            ended[key] = ev.label
    unfinished = set(started) - set(ended)
    if unfinished:
        span = sorted(unfinished)[0]
        return f"span {span[1]!r} has a run_start but no run_end"
    return None


__all__ = [
    "EVENT_TYPES",
    "TELEMETRY_SCHEMA",
    "TelemetryEvent",
    "new_span_id",
    "new_trace_id",
    "validate_events",
]
