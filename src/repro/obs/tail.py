"""Render a human-readable summary of a telemetry trace.

This backs ``python -m repro tail DIR``: it folds a JSONL event log
(one file or a directory of ``trace-*.jsonl``) into per-span summaries —
duration, rounds/sec, final theorem-budget margins, violation count —
plus trace-level aggregates (total runs, slowest spans, whether every
span closed cleanly).  Traces from asynchronous runs additionally get a
clock-skew section attributing each span's wall time to its slowest
robot (from the ``clock`` events).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .schema import TelemetryEvent, validate_events
from .writer import load_trace

logger = logging.getLogger(__name__)


@dataclass
class SpanSummary:
    """Everything the tail view knows about one span (job/run)."""

    trace_id: str
    span_id: str
    label: str = ""
    fingerprint: str = ""
    start_ts: Optional[float] = None
    end_ts: Optional[float] = None
    rounds: int = 0
    billed_rounds: int = 0
    margins: Dict[str, float] = field(default_factory=dict)
    violations: int = 0
    outcome: Dict[str, Any] = field(default_factory=dict)
    #: Per-robot clock summary of an asynchronous run (the ``clock``
    #: event payload); empty for synchronous spans.
    clock: Dict[str, Any] = field(default_factory=dict)
    #: The span's resource bill (the ``resource`` event payload:
    #: cpu_user_s/cpu_sys_s/max_rss_kb/energy_j/...); empty when the
    #: trace predates resource sampling.
    resources: Dict[str, Any] = field(default_factory=dict)
    #: The ``run_start`` payload (kind/algorithm/k/size/budgets) — what
    #: ``repro report`` pivots on when fed a telemetry dir.
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Wall seconds between run_start and run_end (None if open)."""
        if self.start_ts is None or self.end_ts is None:
            return None
        return max(0.0, self.end_ts - self.start_ts)

    @property
    def rounds_per_sec(self) -> float:
        """Engine rounds per wall second (0.0 when unknowable)."""
        duration = self.duration
        if not duration or duration <= 0 or self.rounds <= 0:
            return 0.0
        return self.rounds / duration


@dataclass
class ServingSummary:
    """The serving layer's slice of a trace: requests, queue, latency.

    Folded from the ``request``/``queue``/``latency`` events the
    ``repro serve`` daemon emits; empty when the trace came from a
    batch sweep.
    """

    #: Requests by outcome source (cache / dedup / fresh / error codes).
    by_source: Dict[str, int] = field(default_factory=dict)
    #: Requests by response status (ok / rate_limited / saturated / ...).
    by_status: Dict[str, int] = field(default_factory=dict)
    requests: int = 0
    errors: int = 0
    #: Last latency percentile snapshot per source, straight from the
    #: server's ``latency`` events: {source: {count, p50_ms, ...}}.
    percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    queue_depth: int = 0
    queue_depth_max: int = 0
    queue_capacity: int = 0
    inflight: int = 0

    @property
    def seen(self) -> bool:
        """Whether the trace contains any serving-layer events."""
        return bool(self.requests or self.percentiles or self.queue_capacity)

    def fold(self, ev: TelemetryEvent) -> None:
        """Fold one request/queue/latency event into the aggregates."""
        data = ev.data
        if ev.event == "request":
            self.requests += 1
            source = str(data.get("source", "?"))
            status = str(data.get("status", "?"))
            self.by_source[source] = self.by_source.get(source, 0) + 1
            self.by_status[status] = self.by_status.get(status, 0) + 1
            if status != "ok":
                self.errors += 1
        elif ev.event == "queue":
            self.queue_depth = int(data.get("depth", 0) or 0)
            self.queue_depth_max = max(self.queue_depth_max, self.queue_depth)
            self.queue_capacity = int(data.get("capacity", 0) or 0)
            self.inflight = int(data.get("inflight", 0) or 0)
        elif ev.event == "latency":
            source = str(data.get("source", "all"))
            self.percentiles[source] = {
                key: float(value)
                for key, value in data.items()
                if isinstance(value, (int, float)) and key != "final"
            }


@dataclass
class TraceSummary:
    """A whole trace folded into span summaries and aggregates."""

    spans: Dict[Tuple[str, str], SpanSummary] = field(default_factory=dict)
    events: int = 0
    violations: int = 0
    problem: Optional[str] = None
    serving: ServingSummary = field(default_factory=ServingSummary)

    def closed_spans(self) -> List[SpanSummary]:
        """Spans with both a run_start and a run_end, slowest first."""
        done = [s for s in self.spans.values() if s.duration is not None]
        return sorted(done, key=lambda s: s.duration or 0.0, reverse=True)

    def open_spans(self) -> List[SpanSummary]:
        """Spans that started but never ended (crash or still running).

        Spans that only ever carried span-less events (e.g. the serving
        layer's per-request events) are not "open" — they never started.
        """
        return [
            s for s in self.spans.values()
            if s.start_ts is not None and s.end_ts is None
        ]


def summarize(events: Iterable[TelemetryEvent]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`."""
    events = list(events)
    summary = TraceSummary(events=len(events))
    summary.problem = validate_events(events)
    for ev in events:
        key = (ev.trace_id, ev.span_id)
        span = summary.spans.get(key)
        if span is None:
            span = summary.spans[key] = SpanSummary(
                trace_id=ev.trace_id, span_id=ev.span_id
            )
        if ev.label and not span.label:
            span.label = ev.label
        if ev.fingerprint and not span.fingerprint:
            span.fingerprint = ev.fingerprint
        if ev.event == "run_start":
            span.start_ts = ev.ts
            if ev.data:
                span.meta = dict(ev.data)
        elif ev.event == "run_end":
            span.end_ts = ev.ts
            span.outcome = dict(ev.data)
        elif ev.event == "round":
            span.rounds = int(ev.data.get("wall_round", span.rounds) or 0)
            span.billed_rounds = int(
                ev.data.get("billed_rounds", span.billed_rounds) or 0
            )
        elif ev.event == "budget":
            margins = ev.data.get("margins")
            if isinstance(margins, dict):
                span.margins = {
                    str(name): float(value) for name, value in margins.items()
                }
        elif ev.event == "violation":
            span.violations += 1
            summary.violations += 1
        elif ev.event == "clock":
            span.clock = dict(ev.data)
        elif ev.event == "resource":
            span.resources = dict(ev.data)
        elif ev.event in ("request", "queue", "latency"):
            summary.serving.fold(ev)
    return summary


def _fmt_margin(margins: Dict[str, float]) -> str:
    if not margins:
        return "-"
    return " ".join(
        f"{name}={value:+.1f}" for name, value in sorted(margins.items())
    )


def render_latency(serving: ServingSummary) -> List[str]:
    """Render the serving layer's latency/queue section.

    One line per outcome source with the server-computed p50/p95/p99
    (milliseconds), plus the queue-depth and in-flight gauges.
    """
    lines: List[str] = []
    if not serving.seen:
        return ["serving: no request/queue/latency events in this trace"]
    sources = " ".join(
        f"{source}={count}" for source, count in sorted(serving.by_source.items())
    )
    lines.append(
        f"serving: {serving.requests} requests ({sources}), "
        f"{serving.errors} errors"
    )
    if serving.percentiles:
        lines.append(
            f"  {'source':<8} {'n':>7} {'p50ms':>8} {'p95ms':>8} "
            f"{'p99ms':>8} {'maxms':>8}"
        )
        for source in sorted(serving.percentiles):
            snap = serving.percentiles[source]
            lines.append(
                f"  {source:<8} {int(snap.get('count', 0)):>7} "
                f"{snap.get('p50_ms', 0.0):>8.2f} "
                f"{snap.get('p95_ms', 0.0):>8.2f} "
                f"{snap.get('p99_ms', 0.0):>8.2f} "
                f"{snap.get('max_ms', 0.0):>8.2f}"
            )
    if serving.queue_capacity:
        lines.append(
            f"queue: depth {serving.queue_depth} "
            f"(max {serving.queue_depth_max}) of {serving.queue_capacity}, "
            f"{serving.inflight} in flight"
        )
    return lines


def _fmt_energy(value: Any) -> str:
    if not isinstance(value, (int, float)):
        return "n/a"
    return f"{float(value):.3f}"


def render_resources(summary: TraceSummary, limit: int = 5) -> List[str]:
    """Render the resource-accounting section (``repro tail --resources``).

    One line per sampled span, costliest CPU first, plus trace totals.
    Energy renders ``n/a`` whenever no probe could read it — absence of
    a RAPL counter must look different from zero joules.
    """
    spans = [s for s in summary.spans.values() if s.resources]
    if not spans:
        return ["resources: no resource events in this trace "
                "(pre-v1.8 trace or sampling disabled)"]
    spans.sort(
        key=lambda s: float(s.resources.get("cpu_s", 0.0) or 0.0), reverse=True
    )
    total_cpu = sum(float(s.resources.get("cpu_s", 0.0) or 0.0) for s in spans)
    peak_rss = max(int(s.resources.get("max_rss_kb", 0) or 0) for s in spans)
    energies = [
        float(s.resources["energy_j"]) for s in spans
        if isinstance(s.resources.get("energy_j"), (int, float))
    ]
    total_energy = sum(energies) if energies else None
    lines = [
        f"resources: {len(spans)} sampled span(s), {total_cpu:.3f} cpu-sec, "
        f"peak rss {peak_rss} KB, energy {_fmt_energy(total_energy)} J"
    ]
    lines.append(
        f"  {'label':<24} {'cpu_s':>8} {'user':>8} {'sys':>8} "
        f"{'rss_kb':>9} {'gc':>4} {'joules':>8}"
    )
    for span in spans[:limit]:
        res = span.resources
        lines.append(
            f"  {(span.label or span.span_id or '-')[:24]:<24} "
            f"{float(res.get('cpu_s', 0.0) or 0.0):>8.3f} "
            f"{float(res.get('cpu_user_s', 0.0) or 0.0):>8.3f} "
            f"{float(res.get('cpu_sys_s', 0.0) or 0.0):>8.3f} "
            f"{int(res.get('max_rss_kb', 0) or 0):>9} "
            f"{int(res.get('gc_collections', 0) or 0):>4} "
            f"{_fmt_energy(res.get('energy_j')):>8}"
        )
    return lines


def render_clocks(summary: TraceSummary, limit: int = 5) -> List[str]:
    """Render the async clock-skew section: one line per async span.

    Shows the completion time the asynchronous guarantee bounds, the
    fastest/slowest per-robot clock spread, and which robot dragged the
    run (with its share of the team's elapsed time) — the async
    counterpart of the serving layer's latency attribution.
    """
    spans = [s for s in summary.spans.values() if s.clock]
    if not spans:
        return []
    spans.sort(key=lambda s: float(s.clock.get("skew", 0.0)), reverse=True)
    lines = [f"async clocks ({len(spans)} span(s), most skewed first):"]
    lines.append(
        f"  {'label':<24} {'k':>4} {'completion':>11} {'max':>9} "
        f"{'skew':>8}  slowest"
    )
    for span in spans[:limit]:
        clock = span.clock
        max_time = float(clock.get("max_time", 0.0))
        slowest_robot = int(clock.get("slowest", 0))
        times = clock.get("times") or []
        share = ""
        try:
            slowest_time = float(times[slowest_robot])
            if max_time > 0:
                share = f" ({slowest_time / max_time:.0%} of wall)"
        except (IndexError, TypeError, ValueError):
            pass
        lines.append(
            f"  {(span.label or span.span_id or '-')[:24]:<24} "
            f"{int(clock.get('k', 0)):>4} "
            f"{float(clock.get('completion_time', 0.0)):>11.2f} "
            f"{max_time:>9.2f} {float(clock.get('skew', 0.0)):>8.3f}  "
            f"robot {slowest_robot}{share}"
        )
    return lines


def render(
    summary: TraceSummary, slowest: int = 5, latency: bool = False,
    resources: bool = False,
) -> List[str]:
    """Render a trace summary as display lines (no trailing newlines)."""
    lines: List[str] = []
    closed = summary.closed_spans()
    open_spans = summary.open_spans()
    # A span whose id equals its trace id is the sweep itself, not a job.
    job_spans = [s for s in closed if s.span_id and s.span_id != s.trace_id]
    lines.append(
        f"trace: {summary.events} events, {len(summary.spans)} spans "
        f"({len(closed)} closed), {summary.violations} violations"
    )
    if summary.problem:
        lines.append(f"WARNING: {summary.problem}")
    for span in open_spans:
        lines.append(
            f"OPEN  {span.span_id or '<trace>'}  {span.label or '-'} "
            f"(run_start without run_end)"
        )
    if open_spans:
        # Diagnostic, not a failure: a truncated or crashed trace must
        # never render as silently complete, but it also must not flip
        # the exit code the way a theorem violation does.
        lines.append(
            f"INCOMPLETE: {len(open_spans)} span(s) never ended — trace "
            "truncated or worker crashed; totals below cover closed "
            "spans only"
        )
    if job_spans:
        total_rounds = sum(s.rounds for s in job_spans)
        total_secs = sum(s.duration or 0.0 for s in job_spans)
        rate = total_rounds / total_secs if total_secs > 0 else 0.0
        lines.append(
            f"rounds: {total_rounds} over {total_secs:.3f}s "
            f"({rate:,.0f} rounds/sec aggregate)"
        )
        lines.append("")
        lines.append(f"slowest spans (top {min(slowest, len(job_spans))}):")
        header = (
            f"  {'span':<14} {'label':<24} {'secs':>8} {'rounds':>8} "
            f"{'viol':>4}  margins"
        )
        lines.append(header)
        for span in job_spans[:slowest]:
            lines.append(
                f"  {span.span_id:<14} {(span.label or '-')[:24]:<24} "
                f"{span.duration or 0.0:>8.3f} {span.rounds:>8} "
                f"{span.violations:>4}  {_fmt_margin(span.margins)}"
            )
    clock_lines = render_clocks(summary, limit=slowest)
    if clock_lines:
        lines.append("")
        lines.extend(clock_lines)
    if resources:
        lines.append("")
        lines.extend(render_resources(summary, limit=slowest))
    if latency:
        lines.append("")
        lines.extend(render_latency(summary.serving))
    if summary.violations == 0:
        lines.append("budget: all margins non-negative (0 violations)")
    else:
        lines.append(
            f"budget: {summary.violations} VIOLATION(S) — a theorem bound "
            "was crossed; inspect the violation events"
        )
    return lines


def tail(
    dir_or_file: str, slowest: int = 5, latency: bool = False,
    resources: bool = False,
) -> str:
    """Load a telemetry trace and return the rendered summary text."""
    events = load_trace(dir_or_file)
    if not events:
        return f"no telemetry events under {dir_or_file}"
    return "\n".join(
        render(
            summarize(events), slowest=slowest, latency=latency,
            resources=resources,
        )
    )


__all__ = [
    "ServingSummary",
    "SpanSummary",
    "TraceSummary",
    "render",
    "render_clocks",
    "render_latency",
    "render_resources",
    "summarize",
    "tail",
]
