"""Render a human-readable summary of a telemetry trace.

This backs ``python -m repro tail DIR``: it folds a JSONL event log
(one file or a directory of ``trace-*.jsonl``) into per-span summaries —
duration, rounds/sec, final theorem-budget margins, violation count —
plus trace-level aggregates (total runs, slowest spans, whether every
span closed cleanly).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .schema import TelemetryEvent, validate_events
from .writer import load_trace

logger = logging.getLogger(__name__)


@dataclass
class SpanSummary:
    """Everything the tail view knows about one span (job/run)."""

    trace_id: str
    span_id: str
    label: str = ""
    fingerprint: str = ""
    start_ts: Optional[float] = None
    end_ts: Optional[float] = None
    rounds: int = 0
    billed_rounds: int = 0
    margins: Dict[str, float] = field(default_factory=dict)
    violations: int = 0
    outcome: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Wall seconds between run_start and run_end (None if open)."""
        if self.start_ts is None or self.end_ts is None:
            return None
        return max(0.0, self.end_ts - self.start_ts)

    @property
    def rounds_per_sec(self) -> float:
        """Engine rounds per wall second (0.0 when unknowable)."""
        duration = self.duration
        if not duration or duration <= 0 or self.rounds <= 0:
            return 0.0
        return self.rounds / duration


@dataclass
class TraceSummary:
    """A whole trace folded into span summaries and aggregates."""

    spans: Dict[Tuple[str, str], SpanSummary] = field(default_factory=dict)
    events: int = 0
    violations: int = 0
    problem: Optional[str] = None

    def closed_spans(self) -> List[SpanSummary]:
        """Spans with both a run_start and a run_end, slowest first."""
        done = [s for s in self.spans.values() if s.duration is not None]
        return sorted(done, key=lambda s: s.duration or 0.0, reverse=True)

    def open_spans(self) -> List[SpanSummary]:
        """Spans that started but never ended (crash or still running)."""
        return [s for s in self.spans.values() if s.duration is None]


def summarize(events: Iterable[TelemetryEvent]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`."""
    events = list(events)
    summary = TraceSummary(events=len(events))
    summary.problem = validate_events(events)
    for ev in events:
        key = (ev.trace_id, ev.span_id)
        span = summary.spans.get(key)
        if span is None:
            span = summary.spans[key] = SpanSummary(
                trace_id=ev.trace_id, span_id=ev.span_id
            )
        if ev.label and not span.label:
            span.label = ev.label
        if ev.fingerprint and not span.fingerprint:
            span.fingerprint = ev.fingerprint
        if ev.event == "run_start":
            span.start_ts = ev.ts
        elif ev.event == "run_end":
            span.end_ts = ev.ts
            span.outcome = dict(ev.data)
        elif ev.event == "round":
            span.rounds = int(ev.data.get("wall_round", span.rounds) or 0)
            span.billed_rounds = int(
                ev.data.get("billed_rounds", span.billed_rounds) or 0
            )
        elif ev.event == "budget":
            margins = ev.data.get("margins")
            if isinstance(margins, dict):
                span.margins = {
                    str(name): float(value) for name, value in margins.items()
                }
        elif ev.event == "violation":
            span.violations += 1
            summary.violations += 1
    return summary


def _fmt_margin(margins: Dict[str, float]) -> str:
    if not margins:
        return "-"
    return " ".join(
        f"{name}={value:+.1f}" for name, value in sorted(margins.items())
    )


def render(summary: TraceSummary, slowest: int = 5) -> List[str]:
    """Render a trace summary as display lines (no trailing newlines)."""
    lines: List[str] = []
    closed = summary.closed_spans()
    # A span whose id equals its trace id is the sweep itself, not a job.
    job_spans = [s for s in closed if s.span_id and s.span_id != s.trace_id]
    lines.append(
        f"trace: {summary.events} events, {len(summary.spans)} spans "
        f"({len(closed)} closed), {summary.violations} violations"
    )
    if summary.problem:
        lines.append(f"WARNING: {summary.problem}")
    for span in summary.open_spans():
        lines.append(
            f"OPEN  {span.span_id or '<trace>'}  {span.label or '-'} "
            f"(run_start without run_end)"
        )
    if job_spans:
        total_rounds = sum(s.rounds for s in job_spans)
        total_secs = sum(s.duration or 0.0 for s in job_spans)
        rate = total_rounds / total_secs if total_secs > 0 else 0.0
        lines.append(
            f"rounds: {total_rounds} over {total_secs:.3f}s "
            f"({rate:,.0f} rounds/sec aggregate)"
        )
        lines.append("")
        lines.append(f"slowest spans (top {min(slowest, len(job_spans))}):")
        header = (
            f"  {'span':<14} {'label':<24} {'secs':>8} {'rounds':>8} "
            f"{'viol':>4}  margins"
        )
        lines.append(header)
        for span in job_spans[:slowest]:
            lines.append(
                f"  {span.span_id:<14} {(span.label or '-')[:24]:<24} "
                f"{span.duration or 0.0:>8.3f} {span.rounds:>8} "
                f"{span.violations:>4}  {_fmt_margin(span.margins)}"
            )
    if summary.violations == 0:
        lines.append("budget: all margins non-negative (0 violations)")
    else:
        lines.append(
            f"budget: {summary.violations} VIOLATION(S) — a theorem bound "
            "was crossed; inspect the violation events"
        )
    return lines


def tail(dir_or_file: str, slowest: int = 5) -> str:
    """Load a telemetry trace and return the rendered summary text."""
    events = load_trace(dir_or_file)
    if not events:
        return f"no telemetry events under {dir_or_file}"
    return "\n".join(render(summarize(events), slowest=slowest))


__all__ = ["SpanSummary", "TraceSummary", "render", "summarize", "tail"]
