"""Telemetry-instrumented job execution for the orchestrator pool.

:class:`TelemetryJob` wraps one job/scenario spec with the picklable
:class:`~repro.obs.writer.TelemetryConfig` and a pre-assigned span id;
:func:`run_telemetry_job` is the top-level worker the executor ships to
worker processes.  Each worker opens its *own* writer on the shared
trace file, brackets the run with ``run_start``/``run_end`` events,
attaches the :class:`~repro.obs.metrics.MetricsObserver` and — when the
scenario falls under a paper guarantee — the
:class:`~repro.obs.budget.BudgetObserver`, and folds both observers'
snapshots into the returned result row (so violations and margins are
cached alongside the run's other columns).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict

from .budget import BudgetObserver, budgets_for_scenario
from .metrics import MetricsObserver
from .resources import ResourceSampler
from .schema import new_span_id
from .writer import TelemetryConfig

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TelemetryJob:
    """One spec plus everything needed to join the sweep's event log.

    ``spec`` is a :class:`~repro.orchestrator.jobspec.JobSpec` or a
    :class:`~repro.scenario.ScenarioSpec`; both are picklable, as are
    the config and span id, so the whole job crosses the worker-pool
    boundary intact.
    """

    spec: Any
    config: TelemetryConfig
    span_id: str = field(default_factory=new_span_id)


def run_telemetry_job(
    job: TelemetryJob, extra_observers=(), built=None
) -> Dict[str, object]:
    """Execute one spec under full telemetry and return its result row.

    The row is the ordinary scenario row plus the telemetry columns:
    ``trace_id``, ``span_id``, the metrics observer's counters
    (moves/idle/reveals/...), and — when theorem budgets apply —
    ``violations`` and per-budget ``margin_*`` columns.

    ``extra_observers``/``built`` serve in-process callers (the CLI):
    additional round observers to attach, and an already-materialised
    :class:`~repro.scenario.BuiltScenario` to reuse.  Pool workers use
    the defaults — only ``job`` crosses the process boundary.
    """
    from ..orchestrator.jobspec import JobSpec  # local: import-cycle guard

    spec = job.spec
    if isinstance(spec, JobSpec):
        spec = spec.to_scenario()
    fingerprint = spec.fingerprint()
    label = spec.label or spec.algorithm
    if built is None:
        built = spec.build()
    budgets = budgets_for_scenario(built)
    with job.config.open() as writer:
        writer.emit(
            "run_start",
            span_id=job.span_id,
            fingerprint=fingerprint,
            label=label,
            data={
                "kind": spec.kind,
                "algorithm": spec.algorithm,
                "k": spec.k,
                "size": built.size,
                "budgets": [b.name for b in budgets],
            },
        )
        metrics = MetricsObserver(
            writer=writer,
            span_id=job.span_id,
            fingerprint=fingerprint,
            label=label,
            every=job.config.round_every,
        )
        observers = [metrics, *extra_observers]
        budget_obs = None
        if budgets:
            budget_obs = BudgetObserver(
                budgets,
                writer=writer,
                span_id=job.span_id,
                fingerprint=fingerprint,
                label=label,
                every=job.config.round_every,
            )
            observers.append(budget_obs)
        # Bracket the whole instrumented run (engine + observers) so the
        # ``resource`` event bills what the job actually cost the worker;
        # the row's own cpu_sec/max_rss_kb columns come from the tighter
        # engine-only bracket inside ``BuiltScenario.run``.
        sampler = ResourceSampler().start()
        try:
            row = built.run(observers=observers)
        except BaseException as exc:
            writer.emit(
                "run_end",
                span_id=job.span_id,
                fingerprint=fingerprint,
                label=label,
                data={"status": "error", "error": f"{type(exc).__name__}: {exc}"},
            )
            raise
        sample = sampler.stop()
        if sampler.enabled:
            data = sample.to_data()
            data["rounds"] = row.get("rounds", 0)
            writer.emit(
                "resource",
                span_id=job.span_id,
                fingerprint=fingerprint,
                label=label,
                data=data,
            )
        row["trace_id"] = job.config.trace_id
        row["span_id"] = job.span_id
        for key, value in metrics.snapshot().items():
            row.setdefault(f"obs_{key}", value)
        if budget_obs is not None:
            row.update(budget_obs.snapshot())
        writer.emit(
            "run_end",
            span_id=job.span_id,
            fingerprint=fingerprint,
            label=label,
            data={
                "status": "ok",
                "rounds": row.get("rounds", 0),
                "wall_rounds": row.get("wall_rounds", 0),
                "complete": row.get("complete", False),
                "violations": row.get("violations", 0),
            },
        )
    return row


__all__ = ["TelemetryJob", "run_telemetry_job"]
