"""Undirected graph substrate for non-tree exploration (Section 4.3).

Graphs carry an *origin* node (where the robots start) and every node
exposes numbered ports to its incident edges.  The paper's Proposition 9
assumes robots always know their distance to the origin in the underlying
graph; :class:`Graph` provides that oracle via a BFS from the origin.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class Graph:
    """An undirected graph with an origin and port-numbered adjacency.

    Parameters
    ----------
    n:
        Number of nodes (ids ``0 .. n-1``).
    edges:
        Iterable of undirected edges ``(u, v)``; parallel edges and
        self-loops are rejected.
    origin:
        The robots' starting node (default 0).
    """

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]], origin: int = 0):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 <= origin < n:
            raise ValueError("origin out of range")
        self.n = n
        self.origin = origin
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._edge_ids: Dict[Tuple[int, int], int] = {}
        self._edges: List[Tuple[int, int]] = []
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at {u}")
            key = (min(u, v), max(u, v))
            if key in self._edge_ids:
                raise ValueError(f"parallel edge {key}")
            self._edge_ids[key] = len(self._edges)
            self._edges.append(key)
            self._adj[u].append(v)
            self._adj[v].append(u)

        # Distance-to-origin oracle (BFS).
        self._dist = [-1] * n
        self._dist[origin] = 0
        queue = deque([origin])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if self._dist[v] < 0:
                    self._dist[v] = self._dist[u] + 1
                    queue.append(v)
        if any(d < 0 for d in self._dist):
            raise ValueError("graph is not connected")

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges — the ``n`` of Proposition 9's bound."""
        return len(self._edges)

    @property
    def radius(self) -> int:
        """Maximum distance from the origin — Proposition 9's ``D``."""
        return max(self._dist)

    @property
    def max_degree(self) -> int:
        """Maximum node degree (``Delta``)."""
        return max(len(a) for a in self._adj)

    def degree(self, v: int) -> int:
        """Number of ports at ``v``."""
        return len(self._adj[v])

    def port_to(self, v: int, port: int) -> int:
        """Neighbour behind port ``port`` of ``v``."""
        return self._adj[v][port]

    def port_of(self, v: int, u: int) -> int:
        """Port number at ``v`` of the edge to neighbour ``u``."""
        return self._adj[v].index(u)

    def distance_to_origin(self, v: int) -> int:
        """The oracle of Proposition 9: graph distance from ``v`` to the
        origin."""
        return self._dist[v]

    def edge_id(self, u: int, v: int) -> int:
        """Canonical id of the edge ``{u, v}``."""
        return self._edge_ids[(min(u, v), max(u, v))]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All edges as canonical pairs."""
        return iter(self._edges)

    def neighbours(self, v: int) -> Sequence[int]:
        """Neighbours of ``v`` in port order."""
        return self._adj[v]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(n={self.n}, m={self.num_edges}, radius={self.radius}, "
            f"origin={self.origin})"
        )
