"""Maze generators for graph exploration demos and benchmarks.

A perfect maze (spanning tree of the grid) is the degenerate graph case —
BFDN on it behaves like tree BFDN; knocking walls down adds cycles and
exercises the backtrack-and-close rule at a controllable rate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from .graph import Graph


def perfect_maze(
    width: int, height: int, seed: int = 0
) -> Graph:
    """A uniform-ish perfect maze: a random DFS spanning tree of the
    ``width x height`` grid.  ``n = width*height`` nodes, ``n - 1`` edges,
    origin at cell (0, 0)."""
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    rng = random.Random(seed)

    def node(x: int, y: int) -> int:
        return y * width + x

    visited = {(0, 0)}
    stack = [(0, 0)]
    edges: List[Tuple[int, int]] = []
    while stack:
        x, y = stack[-1]
        neighbours = [
            (x + dx, y + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= x + dx < width and 0 <= y + dy < height
            and (x + dx, y + dy) not in visited
        ]
        if not neighbours:
            stack.pop()
            continue
        nxt = rng.choice(neighbours)
        visited.add(nxt)
        edges.append((node(x, y), node(*nxt)))
        stack.append(nxt)
    return Graph(width * height, edges, origin=0)


def braided_maze(
    width: int, height: int, extra_passages: int, seed: int = 0
) -> Graph:
    """A perfect maze with ``extra_passages`` additional walls removed.

    Each removed wall creates exactly one cycle, i.e. one edge the
    closing rule of Proposition 9 must pay for — the knob for studying
    how the non-tree surplus affects exploration.
    """
    if extra_passages < 0:
        raise ValueError("extra_passages must be >= 0")
    rng = random.Random(seed ^ 0x5EED)
    base = perfect_maze(width, height, seed)
    present: Set[Tuple[int, int]] = set(base.edges())

    def node(x: int, y: int) -> int:
        return y * width + x

    candidates = []
    for y in range(height):
        for x in range(width):
            for dx, dy in ((1, 0), (0, 1)):
                if x + dx < width and y + dy < height:
                    edge = tuple(sorted((node(x, y), node(x + dx, y + dy))))
                    if edge not in present:
                        candidates.append(edge)
    rng.shuffle(candidates)
    for edge in candidates[:extra_passages]:
        present.add(edge)  # type: ignore[arg-type]
    return Graph(width * height, sorted(present), origin=0)


def maze_stats(graph: Graph) -> Dict[str, float]:
    """Cycle surplus and eccentricity summary of a maze instance."""
    return {
        "nodes": graph.n,
        "edges": graph.num_edges,
        "cycles": graph.num_edges - (graph.n - 1),
        "radius": graph.radius,
    }
