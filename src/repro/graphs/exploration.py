"""Collaborative exploration of non-tree graphs (Section 4.3).

BFDN runs on a graph after one modification: a robot that traverses a
dangling edge *backtracks and closes* the edge when it leads (1) to an
already-explored node, or (2) to a node that is not strictly farther from
the origin than the edge's first endpoint (the robot knows its distance to
the origin — Proposition 9's oracle).  In case (2) the reached node is not
considered explored.  Edges never closed form a breadth-first tree of
depth ``D`` (the graph's radius), which BFDN explores as usual, while each
closed edge costs at most two extra traversals.  Two robots traversing the
same dangling edge from both endpoints in one round "swap identities":
both stay put and the edge closes at the cost of a single round.

Proposition 9: exploration of a graph with ``n`` edges, radius ``D`` and
maximum degree ``Delta`` completes within
``2n/k + D^2 (min(log Delta, log k) + 3)`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..sim.runloop import (
    Policy,
    RoundEngine,
    RoundObserver,
    RoundState,
    graph_round_cap,
)
from .graph import Graph

# Move kinds for the graph engine.
G_STAY = ("stay",)
G_GOTO = "goto"  # ("goto", neighbour) along a known (tree) edge
G_EXPLORE = "explore"  # ("explore", port) through a dangling edge
G_BACKTRACK = ("backtrack",)  # return along the edge taken last round

_UNKNOWN, _TREE, _CLOSED = 0, 1, 2


class GraphExploration:
    """Shared state of a collaborative graph exploration run."""

    def __init__(self, graph: Graph, k: int):
        if k < 1:
            raise ValueError("at least one robot required")
        self.graph = graph
        self.k = k
        self.positions = [graph.origin] * k
        self.round = 0
        self.explored: Set[int] = {graph.origin}
        self.parent: Dict[int, int] = {graph.origin: -1}
        self.edge_state = [_UNKNOWN] * graph.num_edges
        #: Untried ports per explored node (the graph analogue of dangling).
        self.open_ports: Dict[int, Set[int]] = {
            graph.origin: set(range(graph.degree(graph.origin)))
        }
        #: For robots that must backtrack: the node to return to.
        self.pending_backtrack: List[Optional[int]] = [None] * k
        self.open_by_depth: Dict[int, Set[int]] = {}
        self._min_open_depth = 0
        if self.open_ports[graph.origin]:
            self.open_by_depth[0] = {graph.origin}
        self.closed_edges = 0
        self.tree_edges = 0

    # ------------------------------------------------------------------
    def depth(self, v: int) -> int:
        """Distance-to-origin oracle (only queried for reached nodes)."""
        return self.graph.distance_to_origin(v)

    def is_complete(self) -> bool:
        """Every edge is either a tree edge or closed."""
        return self.tree_edges + self.closed_edges == self.graph.num_edges

    def min_open_depth(self) -> Optional[int]:
        d = self._min_open_depth
        while d <= self.graph.radius:
            bucket = self.open_by_depth.get(d)
            if bucket:
                self._min_open_depth = d
                return d
            d += 1
        return None

    def path_from_origin(self, v: int) -> List[int]:
        path = []
        while v != -1:
            path.append(v)
            v = self.parent[v]
        path.reverse()
        return path

    # ------------------------------------------------------------------
    def _remove_open_port(self, v: int, port: int) -> None:
        ports = self.open_ports.get(v)
        if ports is None:
            return
        ports.discard(port)
        if not ports:
            bucket = self.open_by_depth.get(self.depth(v))
            if bucket is not None:
                bucket.discard(v)

    def _close_edge(self, u: int, w: int) -> None:
        eid = self.graph.edge_id(u, w)
        if self.edge_state[eid] == _CLOSED:
            return
        self.edge_state[eid] = _CLOSED
        self.closed_edges += 1
        if u in self.explored:
            self._remove_open_port(u, self.graph.port_of(u, w))
        if w in self.explored:
            self._remove_open_port(w, self.graph.port_of(w, u))

    def _explore_node(self, w: int, parent: int) -> None:
        eid = self.graph.edge_id(parent, w)
        self.edge_state[eid] = _TREE
        self.tree_edges += 1
        self._remove_open_port(parent, self.graph.port_of(parent, w))
        self.explored.add(w)
        self.parent[w] = parent
        ports = {
            j
            for j, nb in enumerate(self.graph.neighbours(w))
            if self.edge_state[self.graph.edge_id(w, nb)] == _UNKNOWN
        }
        self.open_ports[w] = ports
        if ports:
            self.open_by_depth.setdefault(self.depth(w), set()).add(w)

    # ------------------------------------------------------------------
    def apply(self, moves: Dict[int, Tuple]) -> None:
        """Execute one synchronous round."""
        graph = self.graph
        new_positions = list(self.positions)
        explores: List[Tuple[int, int, int]] = []  # (robot, u, port)
        moved = False

        for i, move in moves.items():
            u = self.positions[i]
            kind = move[0]
            if kind == "stay":
                continue
            if kind == "backtrack":
                target = self.pending_backtrack[i]
                if target is None:
                    raise ValueError(f"robot {i} has no pending backtrack")
                new_positions[i] = target
                self.pending_backtrack[i] = None
                moved = True
            elif kind == "goto":
                target = move[1]
                eid = graph.edge_id(u, target)
                if self.edge_state[eid] != _TREE:
                    raise ValueError(f"robot {i}: {u}->{target} is not a tree edge")
                new_positions[i] = target
                moved = True
            elif kind == "explore":
                port = move[1]
                if port not in self.open_ports.get(u, ()):
                    raise ValueError(f"robot {i}: port {port} of {u} is not open")
                explores.append((i, u, port))
                moved = True
            else:
                raise ValueError(f"robot {i}: unknown move {move!r}")

        # Identity swaps: the same edge taken from both endpoints at once.
        by_edge: Dict[int, List[Tuple[int, int, int]]] = {}
        for entry in explores:
            _, u, port = entry
            eid = graph.edge_id(u, graph.port_to(u, port))
            by_edge.setdefault(eid, []).append(entry)
        for eid, entries in by_edge.items():
            if len(entries) == 2 and entries[0][1] != entries[1][1]:
                # Both robots stay (swap); the edge closes at cost 1 round.
                u, w = entries[0][1], entries[1][1]
                self._close_edge(u, w)
            elif len(entries) > 1:
                robots = [e[0] for e in entries]
                raise ValueError(f"robots {robots} selected the same dangling edge")
            else:
                i, u, port = entries[0]
                w = graph.port_to(u, port)
                if w in self.explored or self.depth(w) <= self.depth(u):
                    # Backtrack-and-close (rules (1) and (2)); in case (2)
                    # the reached node is *not* considered explored.
                    self._close_edge(u, w)
                    new_positions[i] = w
                    self.pending_backtrack[i] = u
                else:
                    self._explore_node(w, u)
                    new_positions[i] = w

        if moved:
            self.round += 1
        self.positions = new_positions


class GraphBFDN:
    """BFDN with the backtrack-and-close modification (Proposition 9)."""

    name = "BFDN-graph"

    def __init__(self, expl: GraphExploration):
        self.expl = expl
        k = expl.k
        origin = expl.graph.origin
        self._anchors = [origin] * k
        self._stacks: List[List[int]] = [[] for _ in range(k)]
        self._loads: Dict[int, int] = {origin: k}

    # ------------------------------------------------------------------
    def select_moves(self) -> Dict[int, Tuple]:
        expl = self.expl
        origin = expl.graph.origin
        moves: Dict[int, Tuple] = {}
        port_iters: Dict[int, Iterator[int]] = {}
        for i in range(expl.k):
            if expl.pending_backtrack[i] is not None:
                moves[i] = G_BACKTRACK
                continue
            u = expl.positions[i]
            if u == origin and not self._stacks[i]:
                self._reanchor(i)
            if self._stacks[i]:
                moves[i] = ("goto", self._stacks[i].pop())
                continue
            it = port_iters.get(u)
            if it is None:
                it = iter(sorted(expl.open_ports.get(u, ())))
                port_iters[u] = it
            port = next(it, None)
            if port is not None:
                moves[i] = ("explore", port)
            elif u != origin:
                moves[i] = ("goto", expl.parent[u])
            else:
                moves[i] = G_STAY
        return moves

    def _reanchor(self, i: int) -> None:
        expl = self.expl
        d = expl.min_open_depth()
        if d is None:
            new = expl.graph.origin
        else:
            new = min(
                expl.open_by_depth[d], key=lambda v: (self._loads.get(v, 0), v)
            )
        old = self._anchors[i]
        if new != old:
            self._loads[old] -= 1
            self._loads[new] = self._loads.get(new, 0) + 1
            self._anchors[i] = new
        if d is not None:
            path = expl.path_from_origin(new)
            self._stacks[i] = list(reversed(path[1:]))


class GraphRoundState(RoundState):
    """Adapts a :class:`GraphExploration` to the runloop protocol."""

    def __init__(self, expl: GraphExploration):
        self.expl = expl
        self._team = frozenset(range(expl.k))

    def apply(self, moves, movable):
        """Execute one synchronous round (the graph engine has no
        break-down mask, so ``movable`` is ignored)."""
        return self.expl.apply(moves)

    def billed_rounds(self) -> int:
        """Rounds in which at least one robot moved."""
        return self.expl.round

    def is_complete(self) -> bool:
        """Every edge is either a tree edge or closed."""
        return self.expl.is_complete()

    def progress_token(self):
        """Positions plus settled-edge count: an identity swap closes an
        edge without moving anyone, so edge progress counts too."""
        return (
            list(self.expl.positions),
            self.expl.tree_edges + self.expl.closed_edges,
        )

    def team(self):
        """All ``k`` robots."""
        return self._team


class GraphPolicy(Policy):
    """Adapts a :class:`GraphBFDN` strategy to the runloop protocol."""

    name = "BFDN-graph"

    def __init__(self, algo: "GraphBFDN"):
        self.algo = algo

    def select_moves(self, state: GraphRoundState, movable) -> Dict[int, Tuple]:
        """Delegate this round's move selection to the strategy."""
        return self.algo.select_moves()


@dataclass
class GraphExplorationResult:
    """Outcome of a graph exploration run."""

    rounds: int
    complete: bool
    all_home: bool
    num_edges: int
    radius: int
    closed_edges: int
    tree_edges: int


def proposition9_bound(num_edges: int, radius: int, k: int, delta: int) -> float:
    """``2n/k + D^2 (min(log Delta, log k) + 3)`` with ``n`` = #edges and
    ``D`` = the radius."""
    lk = math.log(k) if k > 1 else 0.0
    ld = math.log(delta) if delta > 1 else 0.0
    term = min(lk, ld) if k > 1 and delta > 1 else 0.0
    return 2 * num_edges / k + radius * radius * (term + 3)


def run_graph_bfdn(
    graph: Graph,
    k: int,
    max_rounds: Optional[int] = None,
    observers: Sequence[RoundObserver] = (),
) -> GraphExplorationResult:
    """Run graph-BFDN to termination (everything traversed, robots home).

    The loop is the shared :class:`~repro.sim.runloop.RoundEngine`; the
    progress token folds in the settled-edge count because an identity
    swap closes an edge without changing any position.  ``observers``
    are per-round engine hooks (timing, tracing, early stops).
    """
    expl = GraphExploration(graph, k)
    algo = GraphBFDN(expl)
    cap = (
        max_rounds
        if max_rounds is not None
        else graph_round_cap(graph.num_edges, graph.radius, k)
    )
    engine = RoundEngine(
        state=GraphRoundState(expl),
        policy=GraphPolicy(algo),
        observers=observers,
        billed_cap=cap,
        cap_message=lambda billed, wall: (
            f"graph BFDN exceeded {cap} rounds "
            f"(billed={billed}, wall={wall}) on "
            f"graph(m={graph.num_edges}, radius={graph.radius}), k={k}"
        ),
    )
    engine.run()
    origin = graph.origin
    return GraphExplorationResult(
        rounds=expl.round,
        complete=expl.is_complete(),
        all_home=all(p == origin for p in expl.positions),
        num_edges=graph.num_edges,
        radius=graph.radius,
        closed_edges=expl.closed_edges,
        tree_edges=expl.tree_edges,
    )
