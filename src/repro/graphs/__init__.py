"""Graph substrate and graph exploration (Section 4.3)."""

from .exploration import (
    GraphBFDN,
    GraphExploration,
    GraphExplorationResult,
    proposition9_bound,
    run_graph_bfdn,
)
from .graph import Graph
from .grid import GridGraph, Obstacle, is_manhattan, random_obstacle_grid
from .mazes import braided_maze, maze_stats, perfect_maze

__all__ = [
    "Graph",
    "GridGraph",
    "Obstacle",
    "is_manhattan",
    "random_obstacle_grid",
    "GraphExploration",
    "GraphBFDN",
    "GraphExplorationResult",
    "run_graph_bfdn",
    "proposition9_bound",
    "perfect_maze",
    "braided_maze",
    "maze_stats",
]
