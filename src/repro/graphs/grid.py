"""Grid graphs with rectangular obstacles (Ortolf–Schindelhauer [12]).

The setting the paper cites as a natural application of Proposition 9:
robots explore the free cells of a ``width x height`` grid from the corner
``(0, 0)``, with axis-aligned rectangular obstacles removed.  When no
obstacle shadows a cell, the distance to the origin is the Manhattan
distance ``i + j``; :func:`is_manhattan` checks whether a given instance
has this property (Proposition 9 itself only needs the generic BFS
oracle, which :class:`~repro.graphs.graph.Graph` always provides).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph


@dataclass(frozen=True)
class Obstacle:
    """An axis-aligned rectangle of blocked cells (inclusive bounds)."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x0 > self.x1 or self.y0 > self.y1:
            raise ValueError("empty obstacle rectangle")

    def contains(self, x: int, y: int) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1


class GridGraph(Graph):
    """The free-cell graph of a rectangular grid with obstacles.

    Cells are 4-connected; the origin is ``(0, 0)`` which must be free,
    and the free region must be connected.
    """

    def __init__(self, width: int, height: int, obstacles: Sequence[Obstacle] = ()):
        if width < 1 or height < 1:
            raise ValueError("width and height must be >= 1")
        self.width = width
        self.height = height
        self.obstacles = list(obstacles)

        def blocked(x: int, y: int) -> bool:
            return any(o.contains(x, y) for o in self.obstacles)

        if blocked(0, 0):
            raise ValueError("the origin cell (0, 0) must be free")

        self._cell_of: List[Tuple[int, int]] = []
        self._id_of: Dict[Tuple[int, int], int] = {}
        for y in range(height):
            for x in range(width):
                if not blocked(x, y):
                    self._id_of[(x, y)] = len(self._cell_of)
                    self._cell_of.append((x, y))

        edges = []
        for (x, y), u in self._id_of.items():
            for dx, dy in ((1, 0), (0, 1)):
                v = self._id_of.get((x + dx, y + dy))
                if v is not None:
                    edges.append((u, v))
        super().__init__(len(self._cell_of), edges, origin=self._id_of[(0, 0)])

    # ------------------------------------------------------------------
    def cell(self, v: int) -> Tuple[int, int]:
        """Grid coordinates of node ``v``."""
        return self._cell_of[v]

    def node_at(self, x: int, y: int) -> Optional[int]:
        """Node id of the free cell ``(x, y)``, or None when blocked."""
        return self._id_of.get((x, y))

    def manhattan(self, v: int) -> int:
        """``i + j`` for the cell of ``v``."""
        x, y = self._cell_of[v]
        return x + y


def is_manhattan(grid: GridGraph) -> bool:
    """True when every free cell's graph distance to the origin equals its
    Manhattan distance (the property [12]'s instances enjoy)."""
    return all(
        grid.distance_to_origin(v) == grid.manhattan(v) for v in range(grid.n)
    )


def random_obstacle_grid(
    width: int,
    height: int,
    num_obstacles: int,
    max_side: int = 4,
    seed: int = 0,
    max_tries: int = 200,
) -> GridGraph:
    """A random connected grid instance with rectangular obstacles.

    Obstacles are drawn uniformly (sides up to ``max_side``) and rejected
    when they would block the origin or disconnect the free region.
    """
    rng = random.Random(seed)
    obstacles: List[Obstacle] = []
    for _ in range(max_tries):
        if len(obstacles) >= num_obstacles:
            break
        x0 = rng.randrange(width)
        y0 = rng.randrange(height)
        o = Obstacle(
            x0,
            y0,
            min(width - 1, x0 + rng.randrange(max_side)),
            min(height - 1, y0 + rng.randrange(max_side)),
        )
        if o.contains(0, 0):
            continue
        try:
            GridGraph(width, height, obstacles + [o])
        except ValueError:
            continue  # would disconnect the free region
        obstacles.append(o)
    return GridGraph(width, height, obstacles)
