"""Closed-form runtime guarantees for every algorithm in the paper.

All logarithms are natural unless noted.  Two flavours are provided for
each algorithm:

* ``*_bound``      — the exact constant-carrying bound stated by the paper
  (used to check measured runtimes against the theory), and
* ``*_simplified`` — the big-O shape used by the paper's Appendix A to
  draw Figure 1 (constants dropped, as the regions are defined up to
  multiplicative constants depending only on ``k``).

Beyond the source paper, the module carries the guarantees of Cosson's
follow-up algorithms, both registered in :mod:`repro.registry`:

* ``tree_mining_*`` — "Breaking the k/log k Barrier via Tree-Mining"
  (arXiv:2309.07011).  The repo's ``tree-mining`` algorithm realises the
  barrier-breaking schedule as BFDN_ell with the recursion depth chosen
  *uniformly* from the team size, ``ell(k) = ceil(sqrt(log2 k))``, so its
  guarantee is Theorem 10 instantiated at that ``ell``: the ``n``-term
  becomes ``4n / 2^{sqrt(log2 k)} = (4n/k) * k / 2^{sqrt(log2 k)}`` —
  a competitive ratio of ``O(k / 2^{sqrt(log2 k)})``, below the classical
  ``k / log k`` barrier.
* ``potential_cte_*`` — "Collective Tree Exploration via Potential
  Function Method" (arXiv:2311.01354): a locally-greedy algorithm with a
  ``2n/k + O(D^2)`` guarantee (no ``log k`` factor on the additive term).
  The paper proves the shape; the constant carried here
  (:data:`POTENTIAL_CTE_CONSTANT`) is pinned to this repo's
  implementation and validated empirically by the test suite.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "bfdn_bound",
    "bfdn_simplified",
    "theorem3_bound",
    "lemma2_bound",
    "adversarial_bound",
    "cte_simplified",
    "yostar_simplified",
    "dfs_simplified",
    "bfdn_ell_bound",
    "bfdn_ell_simplified",
    "best_bfdn_ell_simplified",
    "max_ell",
    "tree_mining_ell",
    "tree_mining_bound",
    "tree_mining_simplified",
    "POTENTIAL_CTE_CONSTANT",
    "potential_cte_bound",
    "potential_cte_simplified",
    "ASYNC_CTE_CONSTANT",
    "async_cte_bound",
    "async_cte_simplified",
    "offline_lower_bound_value",
    "competitive_overhead",
    "competitive_ratio",
]


def _require_team(k: int) -> None:
    if k < 1:
        raise ValueError(f"team size k must be >= 1, got {k}")


def _log_term(k: int, delta: Optional[int]) -> float:
    """``min(log Delta, log k)`` with ``Delta`` optional."""
    lk = math.log(k) if k > 1 else 0.0
    if delta is None or delta <= 1:
        return lk if delta is None else 0.0
    return min(math.log(delta), lk)


def bfdn_bound(n: int, depth: int, k: int, delta: Optional[int] = None) -> float:
    """Theorem 1: ``2n/k + D^2 (min(log Delta, log k) + 3)``."""
    return 2 * n / k + depth * depth * (_log_term(k, delta) + 3)


def bfdn_simplified(n: float, depth: float, k: int) -> float:
    """Figure 1's shape for BFDN: ``2n/k + D^2 log k``."""
    return 2 * n / k + depth * depth * max(math.log(k), 1.0)


def theorem3_bound(k: int, delta: Optional[int] = None) -> float:
    """Theorem 3: ``k min(log Delta, log k) + 2k``."""
    return k * _log_term(k, delta) + 2 * k


def lemma2_bound(k: int, delta: Optional[int] = None) -> float:
    """Lemma 2: re-anchors at any depth ``d`` are at most
    ``k (min(log k, log Delta) + 3)``."""
    return k * (_log_term(k, delta) + 3)


def adversarial_bound(n: int, depth: int, k: int) -> float:
    """Proposition 7: exploration is complete once the average number of
    allowed moves reaches ``2n/k + D^2 (log k + 3)``.

    The ``log Delta`` refinement is unavailable here — the adversary can
    pin all robots at one anchor (see Section 4.2).
    """
    lk = math.log(k) if k > 1 else 0.0
    return 2 * n / k + depth * depth * (lk + 3)


def cte_simplified(n: float, depth: float, k: int) -> float:
    """CTE's guarantee shape (Fraigniaud et al. [10]): ``n / log k + D``."""
    return n / max(math.log(k), 1.0) + depth


def yostar_simplified(n: float, depth: float, k: int) -> float:
    """Yo*'s guarantee (Ortolf–Schindelhauer [13]), as simplified in the
    paper: ``2^{sqrt(log D loglog k)} log k (log n + log k) (n/k + D)``."""
    loglog_k = math.log(max(math.log(k), math.e)) if k > 2 else 1.0
    log_d = math.log(depth) if depth > 1 else 0.0
    blowup = 2.0 ** math.sqrt(max(log_d * loglog_k, 0.0))
    lk = max(math.log(k), 1.0)
    return blowup * lk * (math.log(max(n, 2)) + lk) * (n / k + depth)


def max_ell(k: int) -> int:
    """The constraint of Figure 1's caption: ``ell <= log k / loglog k``
    (BFDN_ell can only beat CTE when ``k^{1/ell} > log k``)."""
    if k < 3:
        return 1
    lk = math.log(k)
    return max(1, int(lk / math.log(lk)))


def bfdn_ell_bound(
    n: int, depth: int, k: int, ell: int, delta: Optional[int] = None
) -> float:
    """Theorem 10: ``4n/k^{1/ell} + 2^{ell+1} (ell + 1 +
    min(log Delta, log k / ell)) D^{1+1/ell}``."""
    if ell < 1:
        raise ValueError("ell must be >= 1")
    lk = (math.log(k) if k > 1 else 0.0) / ell
    log_term = lk if delta is None or delta <= 1 else min(math.log(delta), lk)
    return 4 * n / k ** (1 / ell) + 2 ** (ell + 1) * (ell + 1 + log_term) * depth ** (
        1 + 1 / ell
    )


def bfdn_ell_simplified(n: float, depth: float, k: int, ell: int) -> float:
    """Figure 1's shape for BFDN_ell:
    ``n / k^{1/ell} + 2^ell log k D^{1+1/ell}``."""
    if ell < 1:
        raise ValueError("ell must be >= 1")
    return n / k ** (1 / ell) + 2**ell * max(math.log(k), 1.0) * depth ** (1 + 1 / ell)


def best_bfdn_ell_simplified(n: float, depth: float, k: int, min_ell: int = 2) -> float:
    """Best simplified BFDN_ell guarantee over the admissible ``ell`` range
    (``ell >= 2`` by default, since ``ell = 1`` *is* BFDN up to constants)."""
    top = max(max_ell(k), min_ell)
    return min(
        bfdn_ell_simplified(n, depth, k, ell) for ell in range(min_ell, top + 1)
    )


def dfs_simplified(n: float, depth: float, k: int) -> float:
    """The single-robot DFS baseline's shape: ``2n`` (a lone robot walks
    every edge twice, whatever ``k`` is).  Included in the extended region
    map as the scale anchor every collective strategy must beat."""
    return 2 * n


def tree_mining_ell(k: int) -> int:
    """The tree-mining recursion depth ``ell(k) = ceil(sqrt(log2 k))``.

    Instantiating Theorem 10 (``BFDN_ell``) at this ``ell`` turns the
    ``n``-term ``4n/k^{1/ell}`` into ``4n / 2^{sqrt(log2 k)}``, i.e. a
    competitive ratio of ``O(k / 2^{sqrt(log2 k)})`` — the
    barrier-breaking schedule of arXiv:2309.07011, chosen uniformly from
    ``k`` alone (no a-priori knowledge of ``n`` or ``D``)."""
    _require_team(k)
    if k < 2:
        return 1
    return max(1, math.ceil(math.sqrt(math.log2(k))))


def tree_mining_bound(
    n: int, depth: int, k: int, delta: Optional[int] = None
) -> float:
    """Tree-mining's constant-carrying guarantee: Theorem 10 at
    ``ell = tree_mining_ell(k)``, i.e. ``4n / 2^{sqrt(log2 k)} +
    2^{ell+1} (ell + 1 + min(log Delta, log k / ell)) D^{1+1/ell}``."""
    return bfdn_ell_bound(n, depth, k, tree_mining_ell(k), delta)


def tree_mining_simplified(n: float, depth: float, k: int) -> float:
    """Region-map shape for tree-mining: the BFDN_ell shape at the
    uniform ``ell(k)`` (``n / 2^{sqrt(log2 k)} + 2^{ell} log k
    D^{1+1/ell}``)."""
    return bfdn_ell_simplified(n, depth, k, tree_mining_ell(k))


#: Implementation-pinned constant of the ``2n/k + C D^2`` guarantee for
#: ``potential-cte``.  arXiv:2311.01354 proves the *shape* (no ``log k``
#: on the additive term); the constant here covers this repo's
#: locally-greedy implementation and is validated empirically across the
#: registry's tree families (see tests/test_algos_zoo.py).
POTENTIAL_CTE_CONSTANT = 8.0


def potential_cte_bound(n: int, depth: int, k: int) -> float:
    """Potential-function CTE's guarantee: ``2n/k + C D^2`` with the
    implementation-pinned ``C`` of :data:`POTENTIAL_CTE_CONSTANT`."""
    _require_team(k)
    return 2 * n / k + POTENTIAL_CTE_CONSTANT * depth * depth


def potential_cte_simplified(n: float, depth: float, k: int) -> float:
    """Region-map shape for potential-function CTE: ``n/k + D^2`` —
    BFDN's shape with the ``log k`` factor removed from the additive
    term."""
    return n / k + depth * depth


#: Implementation-pinned constant of the ``2n/k + C D^2`` guarantee for
#: ``async-cte``'s *completion time* (normalised time units, every
#: traversal at most one unit).  arXiv:2507.15658 proves the shape for
#: the distributed asynchronous algorithm under arbitrary speed
#: schedules; the constant here covers this repo's whiteboard
#: implementation and is validated empirically across the registry's
#: tree families and speed schedules (see tests/test_async_scheduler.py).
ASYNC_CTE_CONSTANT = 4.0


def async_cte_bound(n: int, depth: int, k: int) -> float:
    """Asynchronous CTE's guarantee on completion *time*: ``2n/k + C D^2``
    with the implementation-pinned ``C`` of :data:`ASYNC_CTE_CONSTANT`.

    Time is the paper's normalisation: the schedule gives every edge
    traversal a duration in ``(0, 1]``, and the bound holds for *any*
    such schedule — faster agents only help.
    """
    _require_team(k)
    return 2 * n / k + ASYNC_CTE_CONSTANT * max(depth, 1) ** 2


def async_cte_simplified(n: float, depth: float, k: int) -> float:
    """Region-map shape for asynchronous CTE: ``n/k + D^2`` — the
    potential-CTE shape, achieved without the round barrier."""
    return n / k + depth * depth


def offline_lower_bound_value(n: float, depth: float, k: int) -> float:
    """``max(2n/k, 2D)`` — the offline cost every online run is compared
    to; ``0.0`` on degenerate instances with nothing to explore (at most
    one node and depth 0)."""
    _require_team(k)
    if n <= 1 and depth <= 0:
        return 0.0
    return max(2 * n / k, 2 * depth)


def competitive_overhead(rounds: float, n: int, k: int) -> float:
    """The additive overhead ``T - 2n/k`` studied by [1] and this paper.

    Defined for every input with ``k >= 1``: on degenerate instances the
    offline term is ~0 and the overhead is simply the rounds spent."""
    _require_team(k)
    return rounds - 2 * n / k


def competitive_ratio(rounds: float, n: int, depth: int, k: int) -> float:
    """``T / (n/k + D)`` — the classical competitive ratio denominator.

    When the offline denominator is 0 (degenerate instance: ``n <= 0``
    and ``depth <= 0``, e.g. size-normalised inputs with no edges) the
    ratio is defined instead of raising ``ZeroDivisionError``: ``1.0``
    for a 0-round run (trivially optimal), else the rounds spent counted
    against a one-round offline floor — finite and monotone in
    ``rounds``."""
    _require_team(k)
    denominator = n / k + depth
    if denominator <= 0:
        return max(1.0, float(rounds))
    return rounds / denominator
