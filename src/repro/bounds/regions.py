"""Figure 1: regions of the ``(n, D)`` plane where each algorithm's
runtime guarantee is best.

The paper's Figure 1 plots, for a fixed team size ``k``, which of CTE,
Yo*, BFDN and BFDN_ell has the smallest (simplified) runtime guarantee at
each point of a log-log ``(n, D)`` grid, with the region ``n <= D`` shaded
out (no trees there: a tree with depth D has more than D nodes).

:func:`compute_region_map` evaluates the four guarantees on such a grid;
:func:`render_ascii` draws the chart in the terminal.  The Appendix A
closed-form boundaries (e.g. *BFDN beats CTE iff* ``D^2 log^2 k <= n``)
are exposed as predicates so tests can check the computed map against the
paper's algebra.

Beyond the paper's four contenders, :data:`EXTENDED_ALGORITHMS` adds the
rest of the registry's zoo — DFS (the ``2n`` scale anchor), tree-mining
(arXiv:2309.07011) and potential-function CTE (arXiv:2311.01354) — and
``compute_region_map(..., contenders=EXTENDED_ALGORITHMS)`` partitions
the same grid across all seven.  The default map is left exactly as the
paper draws it, so the extended chart is opt-in (``figure1 --extended``).
Tie-break order matters once the zoo overlaps: tree-mining *is* the
BFDN_ell shape at the uniform ``ell(k)``, so it is listed before
``BFDN_ell`` — where the clairvoyant best-``ell`` envelope is achieved at
``ell(k)``, the parameter-free algorithm takes the cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .guarantees import (
    best_bfdn_ell_simplified,
    bfdn_simplified,
    cte_simplified,
    dfs_simplified,
    max_ell,
    potential_cte_simplified,
    tree_mining_simplified,
    yostar_simplified,
)

#: Display order and one-letter codes for the paper's contenders.
ALGORITHMS: Tuple[str, ...] = ("CTE", "Yo*", "BFDN", "BFDN_ell")

#: The full zoo (paper contenders + the follow-up literature + the DFS
#: baseline).  Order is the tie-break: tree-mining precedes BFDN_ell so
#: the uniform algorithm wins the cells where the best-``ell`` envelope
#: is achieved at ``ell(k)`` (the two shapes coincide there).
EXTENDED_ALGORITHMS: Tuple[str, ...] = (
    "CTE",
    "Yo*",
    "BFDN",
    "TreeMining",
    "BFDN_ell",
    "PotentialCTE",
    "DFS",
)

CODES: Dict[str, str] = {
    "CTE": "C",
    "Yo*": "Y",
    "BFDN": "B",
    "BFDN_ell": "L",
    "TreeMining": "M",
    "PotentialCTE": "P",
    "DFS": "D",
    "": ".",
}

_GUARANTEES = {
    "CTE": cte_simplified,
    "Yo*": yostar_simplified,
    "BFDN": bfdn_simplified,
    "BFDN_ell": best_bfdn_ell_simplified,
    "TreeMining": tree_mining_simplified,
    "PotentialCTE": potential_cte_simplified,
    "DFS": dfs_simplified,
}


def guarantee(name: str, n: float, depth: float, k: int) -> float:
    """The (constants-dropped) guarantee score of one contender.

    Note on scale: Yo*'s ``2^{sqrt(log D loglog k)} log k (log n + log k)``
    blow-up must drop below ``k / log k`` before Yo* can win a region, so
    — exactly as the paper's schematic axes (``e^k``, ``e^{log^2 k}``)
    suggest — all four regions of Figure 1 only coexist for large ``k``;
    the benchmark uses ``k = 2^20``.
    """
    try:
        shape = _GUARANTEES[name]
    except KeyError:
        raise ValueError(f"unknown algorithm {name!r}") from None
    return shape(n, depth, k)


def region_winner(
    n: float, depth: float, k: int, contenders: Tuple[str, ...] = ALGORITHMS
) -> str:
    """The contender with the best guarantee at ``(n, D)`` (``""`` when
    ``n <= D``, where no tree exists).  Ties go to the earliest entry of
    ``contenders``."""
    if n <= depth:
        return ""
    values = {name: guarantee(name, n, depth, k) for name in contenders}
    return min(values, key=lambda name: (values[name], contenders.index(name)))


@dataclass
class RegionMap:
    """A computed Figure 1 grid."""

    k: int
    log2_n: List[float]  # grid columns (log2 n)
    log2_d: List[float]  # grid rows (log2 D)
    winners: List[List[str]]  # winners[row][col]
    #: The contender set the grid was computed over (the paper's four by
    #: default; :data:`EXTENDED_ALGORITHMS` for the full zoo).
    contenders: Tuple[str, ...] = field(default=ALGORITHMS)

    def counts(self) -> Dict[str, int]:
        """How many grid cells each contender wins."""
        out: Dict[str, int] = {name: 0 for name in self.contenders}
        for row in self.winners:
            for w in row:
                if w:
                    out[w] += 1
        return out

    def winner_at(self, n: float, depth: float) -> str:
        """Winner at an arbitrary (off-grid) point."""
        return region_winner(n, depth, self.k, self.contenders)


def _linspace(lo: float, hi: float, num: int) -> List[float]:
    """``num`` evenly spaced samples over ``[lo, hi]``, endpoints included."""
    if num < 2:
        return [lo]
    step = (hi - lo) / (num - 1)
    return [lo + i * step for i in range(num)]


def compute_region_map(
    k: int,
    log2_n_max: float = 40.0,
    log2_d_max: float = 30.0,
    resolution: int = 60,
    contenders: Tuple[str, ...] = ALGORITHMS,
) -> RegionMap:
    """Evaluate all guarantees over a log-log grid, like Figure 1."""
    if k < 2:
        raise ValueError("the multi-robot comparison needs k >= 2")
    log2_n = _linspace(1.0, log2_n_max, resolution)
    log2_d = _linspace(0.0, log2_d_max, resolution)
    winners: List[List[str]] = []
    for ld in log2_d:
        row = []
        for ln in log2_n:
            row.append(region_winner(2.0**ln, 2.0**ld, k, contenders))
        winners.append(row)
    return RegionMap(
        k=k, log2_n=log2_n, log2_d=log2_d, winners=winners, contenders=contenders
    )


def render_ascii(region_map: RegionMap) -> str:
    """Draw the region map (D on the vertical axis, decreasing downward is
    *not* used — the top row is the largest D, matching Figure 1)."""
    legend = ", ".join(f"{CODES[name]}={name}" for name in region_map.contenders)
    lines = [
        f"Figure 1 regions for k={region_map.k} "
        f"({legend}, .=no trees (n<=D))",
        f"ell range: 2..{max(2, max_ell(region_map.k))}",
    ]
    for row_idx in range(len(region_map.log2_d) - 1, -1, -1):
        label = f"log2 D={region_map.log2_d[row_idx]:5.1f} |"
        lines.append(label + "".join(CODES[w] for w in region_map.winners[row_idx]))
    lo, hi = region_map.log2_n[0], region_map.log2_n[-1]
    lines.append(" " * 14 + f"log2 n: {lo:.0f} .. {hi:.0f}")
    return "\n".join(lines)


def to_csv(region_map: RegionMap) -> str:
    """CSV dump (``log2_n, log2_d, winner``) for external plotting."""
    rows = ["log2_n,log2_d,winner"]
    for row_idx, ld in enumerate(region_map.log2_d):
        for col_idx, ln in enumerate(region_map.log2_n):
            rows.append(f"{ln:.4f},{ld:.4f},{region_map.winners[row_idx][col_idx]}")
    return "\n".join(rows)


# ----------------------------------------------------------------------
# Appendix A closed-form boundaries (used to cross-check the grid).
# ----------------------------------------------------------------------
def bfdn_beats_cte(n: float, depth: float, k: int) -> bool:
    """Appendix A: BFDN is faster than CTE in the range
    ``D^2 log^2 k <= n``."""
    return depth * depth * math.log(k) ** 2 <= n


def bfdn_ell_beats_bfdn(n: float, depth: float, k: int, ell: int) -> bool:
    """Appendix A: BFDN_ell overtakes BFDN when ``n / k^{1/ell} < D^2``."""
    return n / k ** (1 / ell) < depth * depth


def bfdn_beats_bfdn_ell(n: float, depth: float, k: int) -> bool:
    """Appendix A: BFDN is faster than BFDN_ell when ``n/k > D^2``."""
    return n / k > depth * depth


def bfdn_ell_beats_cte(n: float, depth: float, k: int, ell: int) -> bool:
    """Appendix A: sufficient condition ``D < n^{ell/(ell+1)} / (k log^2 k)``
    (requires ``k^{1/ell} > log k``)."""
    if k ** (1 / ell) <= math.log(k):
        return False
    return depth < n ** (ell / (ell + 1)) / (k * math.log(k) ** 2)
