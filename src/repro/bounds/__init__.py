"""Closed-form guarantees and the Figure 1 region map."""

from .guarantees import (
    adversarial_bound,
    best_bfdn_ell_simplified,
    bfdn_bound,
    bfdn_ell_bound,
    bfdn_ell_simplified,
    bfdn_simplified,
    competitive_overhead,
    competitive_ratio,
    cte_simplified,
    lemma2_bound,
    max_ell,
    offline_lower_bound_value,
    theorem3_bound,
    yostar_simplified,
)
from .regions import (
    ALGORITHMS,
    RegionMap,
    compute_region_map,
    region_winner,
    render_ascii,
    to_csv,
)

__all__ = [
    "bfdn_bound",
    "bfdn_simplified",
    "bfdn_ell_bound",
    "bfdn_ell_simplified",
    "best_bfdn_ell_simplified",
    "theorem3_bound",
    "lemma2_bound",
    "adversarial_bound",
    "cte_simplified",
    "yostar_simplified",
    "max_ell",
    "offline_lower_bound_value",
    "competitive_overhead",
    "competitive_ratio",
    "RegionMap",
    "compute_region_map",
    "region_winner",
    "render_ascii",
    "to_csv",
    "ALGORITHMS",
]
