"""Pluggable scheduler layer: who owns the clock.

Until this module existed the synchronous round clock was hard-wired
into :class:`~repro.sim.runloop.RoundEngine` — every model stepped in
lockstep, one global round at a time.  Cosson's asynchronous follow-up
(arXiv:2507.15658, "Asynchronous Collective Tree Exploration: a
Distributed Algorithm, and a new Lower Bound") drops that assumption:
agents move at adversarially different speeds and the algorithm must be
distributed.  The engine therefore delegates *time* to a
:class:`Scheduler`:

* :class:`SyncRoundScheduler` — the lockstep loop, moved here verbatim
  from ``RoundEngine._run_reference``.  It is the default and is pinned
  byte-identical to the pre-refactor engine by the golden traces and
  hypothesis differentials in the test suite.
* :class:`AsyncEventScheduler` — an event-driven loop with one clock per
  robot.  A :class:`SpeedSchedule` assigns each robot's next traversal a
  duration in ``(0, 1]`` (the paper's normalisation: the slowest agent
  needs at most one time unit per edge); the scheduler pops the robots
  whose traversals finish earliest, lets the policy move exactly those,
  and re-arms their clocks.  Robots never wait for a global barrier.

Equal finish times are processed as one *batch*, which makes the
``unit`` schedule (every duration exactly ``1.0``) reproduce the
synchronous engine: every batch is the full team at integer times, so
any algorithm runs step-for-step like it does under
:class:`SyncRoundScheduler` (property-tested across all tree families).

Accounting (the per-clock ``moves + idle == rounds`` invariant)
---------------------------------------------------------------
Synchronously, every robot is offered every round, so the per-robot
invariant ``moves_i + idle_i == rounds`` holds against the one global
round counter.  Asynchronously each robot has its own clock: robot ``i``
is offered a move once per *tick* of its own clock, so the invariant
becomes per-clock — ``moves_i + idle_i == ticks_i`` with every tick
classified as exactly one of the two.  :class:`AsyncClock` maintains the
three counters per robot, asserts the identity at termination, and the
global counters remain the batch analogues: ``billed`` advances for
batches in which somebody moved, ``wall`` for every batch.  The unit
schedule collapses ``ticks_i`` back to the global round count, which is
how the synchronous wording is recovered as a special case.

The async scheduler requires ``state.progress_token()`` to be an
indexable per-agent snapshot (true for the tree model, whose token is
the position vector) so it can attribute movement to individual clocks.
"""

from __future__ import annotations

import logging
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Set

from .runloop import (
    STOP_CAP,
    STOP_COMPLETE,
    STOP_OBSERVER,
    STOP_QUIESCENT,
    NoInterference,
    RoundCapExceeded,
    RoundEngine,
    RoundObserver,
    RoundRecord,
    RunOutcome,
    tree_round_cap,
)

logger = logging.getLogger(__name__)


class Scheduler(ABC):
    """Owns the clock: decides which agents act when, and drives the
    engine's protocol objects (state, policy, observers) accordingly.

    ``RoundEngine.run`` delegates to its scheduler after backend
    dispatch; the engine itself retains only the *configuration* (caps,
    stop conditions, observers) while the scheduler owns the loop.
    """

    name = "scheduler"

    @abstractmethod
    def run(self, engine: RoundEngine) -> RunOutcome:
        """Drive ``engine.state`` to termination and return the
        accounting."""


class SyncRoundScheduler(Scheduler):
    """The lockstep global round clock (the semantics oracle).

    This is the pre-refactor ``RoundEngine._run_reference`` loop moved
    verbatim: one synchronous round per iteration, every robot offered
    every round, billed-vs-wall accounting and the quiescence test
    exactly as before.  ``RoundEngine`` uses it whenever no scheduler is
    configured, so every existing call site runs through this class.
    """

    name = "sync"

    def run(self, engine: RoundEngine) -> RunOutcome:
        """Drive the state to termination with the global round clock."""
        state = engine.state
        policy = engine.policy
        interference = engine.interference
        observers = list(engine.observers)
        # Phase timing is opt-in per observer; with no taker the loop
        # performs zero clock reads beyond what it always did.
        timed = [obs for obs in observers if obs.wants_phase_timing]
        _t0 = _t1 = _t2 = 0.0
        policy.attach(state)
        for obs in observers:
            obs.on_attach(state)
        t = 0
        reason: Optional[str] = None
        while True:
            if engine.stop_when_complete and state.is_complete():
                reason = STOP_COMPLETE
                break
            if (
                engine.billed_stop is not None
                and state.billed_rounds() >= engine.billed_stop
            ):
                reason = STOP_CAP
                logger.warning(
                    "round cap hit: %d billed rounds >= cap %d "
                    "(run did not finish on its own)",
                    state.billed_rounds(), engine.billed_stop,
                )
                break

            if timed:
                _t0 = perf_counter()
            movable = interference.movable(t, state)
            moves = policy.select_moves(state, movable)
            struck = interference.filter(t, state, moves)
            if struck:
                for agent in sorted(struck):
                    if agent in moves:
                        policy.handle_blocked(state, agent, moves[agent])
                surviving = {i: m for i, m in moves.items() if i not in struck}
            else:
                surviving = moves

            before = state.progress_token()
            billed_before = state.billed_rounds()
            if timed:
                _t1 = perf_counter()
            events = state.apply(surviving, movable)
            if timed:
                _t2 = perf_counter()
            policy.observe(state, events)
            if timed:
                _t3 = perf_counter()
                for obs in timed:
                    obs.on_phase_times(_t1 - _t0, _t2 - _t1, _t3 - _t2)
            record = RoundRecord(
                t=t,
                billed_before=billed_before,
                billed=state.billed_rounds(),
                moves=moves,
                struck=struck,
                movable=movable,
                before=before,
                progressed=state.progress_token() != before,
                events=events,
            )
            for obs in observers:
                obs.on_round(state, record)

            observer_reason = None
            for obs in observers:
                observer_reason = obs.should_stop(state, record)
                if observer_reason is not None:
                    break
            if observer_reason is not None:
                t += 1
                reason = f"{STOP_OBSERVER}:{observer_reason}"
                break

            # The termination test shared by every synchronous model:
            # nobody moved although everyone could (no strike, no mask).
            if (
                not record.progressed
                and not struck
                and movable == state.team()
                and t >= engine.quiescence_grace
            ):
                if engine.bill_quiescent_round:
                    t += 1
                reason = STOP_QUIESCENT
                break

            t += 1
            billed = state.billed_rounds()
            if (engine.billed_cap is not None and billed > engine.billed_cap) or (
                engine.wall_cap is not None and t > engine.wall_cap
            ):
                message = (
                    engine.cap_message(billed, t)
                    if engine.cap_message is not None
                    else f"run exceeded its round cap (billed={billed}, wall={t})"
                )
                raise RoundCapExceeded(message)

        outcome = RunOutcome(
            wall_rounds=t,
            billed_rounds=state.billed_rounds(),
            stop_reason=reason,
        )
        for obs in observers:
            obs.on_stop(state, outcome)
        return outcome


# ---------------------------------------------------------------------
# Speed schedules (the asynchronous adversary)
# ---------------------------------------------------------------------

class SpeedSchedule(ABC):
    """Assigns a duration to each robot's next edge traversal.

    The paper's normalisation: every duration lies in ``(0, 1]`` — the
    slowest agent needs at most one time unit per edge, faster agents
    less.  ``duration(robot, tick)`` must be deterministic in its
    arguments so runs are reproducible from the scenario fingerprint.
    """

    name = "speed"

    @abstractmethod
    def duration(self, robot: int, tick: int) -> float:
        """Duration of robot ``robot``'s ``tick``-th traversal (1-based)."""


class UnitSpeed(SpeedSchedule):
    """Every traversal takes exactly one time unit.

    This is the synchronous model expressed as a speed schedule: all
    robots tick at integer times, every async batch is the full team,
    and any algorithm reproduces its synchronous trace exactly.
    """

    name = "unit"

    def duration(self, robot: int, tick: int) -> float:
        """Always ``1.0``."""
        return 1.0


class AdversarialSlowdown(SpeedSchedule):
    """The paper's adversarial regime: a few robots are maximally slow.

    The first ``slow`` robots move at the normalised worst-case speed
    (duration ``1.0`` per edge); everyone else is ``factor`` times
    faster (duration ``1 / factor``).  This is the schedule that
    separates asynchronous algorithms from round-synchronised ones: a
    global barrier would drag the whole team down to the slow robots'
    clock, while the distributed algorithm lets the fast majority keep
    mining the frontier.
    """

    name = "adversarial-slowdown"

    def __init__(self, slow: int = 1, factor: float = 4.0):
        if slow < 1:
            raise ValueError("slow must be >= 1 (at least one slow robot)")
        if factor < 1.0:
            raise ValueError(
                "factor must be >= 1 (durations are normalised to (0, 1])"
            )
        self.slow = slow
        self.factor = float(factor)

    def duration(self, robot: int, tick: int) -> float:
        """``1.0`` for the ``slow`` victims, ``1/factor`` for the rest."""
        return 1.0 if robot < self.slow else 1.0 / self.factor


class StochasticSpeed(SpeedSchedule):
    """Independent uniform speeds: each traversal draws from
    ``[low, 1.0]``.

    Draws come from one seeded PRNG stream per robot, so durations are
    deterministic per ``(seed, robot, tick)`` and independent of the
    order in which the scheduler asks.
    """

    name = "stochastic"

    def __init__(self, low: float = 0.25, seed: int = 0):
        if not 0.0 < low <= 1.0:
            raise ValueError("low must lie in (0, 1]")
        self.low = float(low)
        self.seed = seed
        self._draws: Dict[int, List[float]] = {}

    def duration(self, robot: int, tick: int) -> float:
        """Uniform draw in ``[low, 1]``, memoised per ``(robot, tick)``."""
        draws = self._draws.get(robot)
        if draws is None:
            draws = self._draws[robot] = []
        while len(draws) < tick:
            rng = random.Random(f"{self.seed}:{robot}:{len(draws)}")
            draws.append(self.low + (1.0 - self.low) * rng.random())
        return draws[tick - 1]


# ---------------------------------------------------------------------
# Per-robot clocks
# ---------------------------------------------------------------------

@dataclass
class AsyncClock:
    """Per-robot clock accounting of one asynchronous run.

    The scheduler publishes this on the state as ``state.clock`` so
    observers (metrics, budgets, telemetry) can read per-robot time
    without widening the :class:`~repro.sim.runloop.RoundObserver`
    protocol.  Counters satisfy, per robot ``i``:

    ``moves[i] + idle[i] == ticks[i]``

    — the per-clock form of the synchronous ``moves + idle == rounds``
    invariant (under the unit schedule ``ticks[i]`` equals the global
    round count for every robot, recovering the synchronous wording).
    """

    #: Team size.
    k: int
    #: Each robot's clock: the time at which its current traversal ends.
    times: List[float] = field(default_factory=list)
    #: Ticks (move offers) each robot has received.
    ticks: List[int] = field(default_factory=list)
    #: Ticks on which the robot traversed an edge.
    moves: List[int] = field(default_factory=list)
    #: Ticks on which the robot stayed in place.
    idle: List[int] = field(default_factory=list)
    #: Event batches processed (the async wall clock).
    batches: int = 0
    #: Time at which the last progressing traversal completed — the
    #: quantity the asynchronous guarantee bounds.
    completion_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.times:
            self.times = [0.0] * self.k
        if not self.ticks:
            self.ticks = [0] * self.k
        if not self.moves:
            self.moves = [0] * self.k
        if not self.idle:
            self.idle = [0] * self.k

    def max_time(self) -> float:
        """The latest per-robot clock (the team's elapsed time)."""
        return max(self.times) if self.times else 0.0

    def skew(self) -> float:
        """Spread between the fastest and slowest robot clocks."""
        if not self.times:
            return 0.0
        return max(self.times) - min(self.times)

    def slowest(self) -> int:
        """Index of the robot with the latest clock (ties: lowest id)."""
        if not self.times:
            return 0
        worst = max(self.times)
        return next(i for i, t in enumerate(self.times) if t == worst)

    def check(self) -> None:
        """Assert the per-clock accounting identity for every robot."""
        for i in range(self.k):
            if self.moves[i] + self.idle[i] != self.ticks[i]:
                raise AssertionError(
                    f"per-clock invariant broken for robot {i}: "
                    f"moves={self.moves[i]} + idle={self.idle[i]} "
                    f"!= ticks={self.ticks[i]}"
                )

    def summary(self) -> Dict[str, Any]:
        """JSON-ready clock summary (telemetry ``clock`` event payload)."""
        return {
            "k": self.k,
            "batches": self.batches,
            "completion_time": round(self.completion_time, 9),
            "max_time": round(self.max_time(), 9),
            "skew": round(self.skew(), 9),
            "slowest": self.slowest(),
            "times": [round(t, 9) for t in self.times],
            "ticks": list(self.ticks),
            "moves": list(self.moves),
            "idle": list(self.idle),
        }


class AsyncEventScheduler(Scheduler):
    """Event-driven per-robot clocks (the asynchronous model).

    A priority queue holds each robot's next wake-up time.  Each
    iteration pops *every* robot whose traversal finishes at the current
    minimum time — one batch — offers exactly those robots to the
    policy (as the ``movable`` set), applies the resulting moves, and
    re-arms each ticking robot's clock with its next duration from the
    speed schedule.  Ties break deterministically by robot index.

    Batches play the role of rounds in the engine protocol: every
    observer receives one :class:`~repro.sim.runloop.RoundRecord` per
    batch with ``movable`` set to the ticking robots, so per-round
    instrumentation (metrics, budgets, traces) works unchanged.
    Quiescence generalises the synchronous test: the run stops once
    every robot has ticked since the last progress and all of them
    stayed — under the unit schedule this is exactly "nobody moved
    although everyone could".

    Interference is not supported: the speed schedule *is* the
    asynchronous adversary (arXiv:2507.15658 has no separate breakdown
    or reactive adversary).
    """

    name = "async"

    def __init__(self, speeds: SpeedSchedule):
        self.speeds = speeds

    def run(self, engine: RoundEngine) -> RunOutcome:
        """Drive the state to termination on per-robot clocks."""
        state = engine.state
        policy = engine.policy
        if not isinstance(engine.interference, NoInterference):
            raise ValueError(
                "the async scheduler does not support interference; "
                "speed schedules are the asynchronous adversary"
            )
        team = state.team()
        if team is None:
            raise ValueError("the async scheduler requires an agent team")
        observers = list(engine.observers)
        timed = [obs for obs in observers if obs.wants_phase_timing]
        _t0 = _t1 = _t2 = 0.0
        policy.attach(state)
        for obs in observers:
            obs.on_attach(state)

        k = len(team)
        clock = AsyncClock(k=k)
        state.clock = clock  # published for observers and budgets
        heap: List[Any] = [(0.0, i) for i in sorted(team)]
        stalled: Set[int] = set()
        t = 0
        reason: Optional[str] = None
        while True:
            if engine.stop_when_complete and state.is_complete():
                reason = STOP_COMPLETE
                break
            if (
                engine.billed_stop is not None
                and state.billed_rounds() >= engine.billed_stop
            ):
                reason = STOP_CAP
                logger.warning(
                    "round cap hit: %d billed batches >= cap %d "
                    "(run did not finish on its own)",
                    state.billed_rounds(), engine.billed_stop,
                )
                break

            # Pop the batch: every robot whose traversal ends earliest.
            now = heap[0][0]
            ticking: Set[int] = set()
            while heap and heap[0][0] == now:
                ticking.add(heappop(heap)[1])

            if timed:
                _t0 = perf_counter()
            moves = policy.select_moves(state, ticking)
            before = state.progress_token()
            billed_before = state.billed_rounds()
            if timed:
                _t1 = perf_counter()
            events = state.apply(moves, ticking)
            if timed:
                _t2 = perf_counter()
            policy.observe(state, events)
            if timed:
                _t3 = perf_counter()
                for obs in timed:
                    obs.on_phase_times(_t1 - _t0, _t2 - _t1, _t3 - _t2)

            # Re-arm each ticking robot's clock and attribute the tick to
            # its per-clock accounting (progress tokens are per-agent
            # position snapshots in the tree model).
            after = state.progress_token()
            progressed_time = 0.0
            for i in sorted(ticking):
                clock.ticks[i] += 1
                ends = now + self.speeds.duration(i, clock.ticks[i])
                if ends <= now:
                    raise ValueError(
                        f"speed schedule {self.speeds.name!r} returned a "
                        f"non-positive duration for robot {i}"
                    )
                clock.times[i] = ends
                heappush(heap, (ends, i))
                if after[i] != before[i]:
                    clock.moves[i] += 1
                    progressed_time = max(progressed_time, ends)
                else:
                    clock.idle[i] += 1
            clock.batches = t + 1

            record = RoundRecord(
                t=t,
                billed_before=billed_before,
                billed=state.billed_rounds(),
                moves=moves,
                struck=set(),
                movable=set(ticking),
                before=before,
                progressed=after != before,
                events=events,
            )
            if record.progressed:
                stalled.clear()
                clock.completion_time = max(
                    clock.completion_time, progressed_time
                )
            else:
                stalled |= ticking
            for obs in observers:
                obs.on_round(state, record)

            observer_reason = None
            for obs in observers:
                observer_reason = obs.should_stop(state, record)
                if observer_reason is not None:
                    break
            if observer_reason is not None:
                t += 1
                reason = f"{STOP_OBSERVER}:{observer_reason}"
                break

            # Quiescence, per-clock: every robot has ticked since the
            # last progress and all of them stayed.  The final all-stay
            # batches are unbilled, matching Algorithm 1's convention.
            if stalled >= team and t >= engine.quiescence_grace:
                if engine.bill_quiescent_round:
                    t += 1
                reason = STOP_QUIESCENT
                break

            t += 1
            billed = state.billed_rounds()
            if (engine.billed_cap is not None and billed > engine.billed_cap) or (
                engine.wall_cap is not None and t > engine.wall_cap
            ):
                message = (
                    engine.cap_message(billed, t)
                    if engine.cap_message is not None
                    else f"run exceeded its batch cap (billed={billed}, wall={t})"
                )
                raise RoundCapExceeded(message)

        clock.check()
        outcome = RunOutcome(
            wall_rounds=t,
            billed_rounds=state.billed_rounds(),
            stop_reason=reason,
        )
        for obs in observers:
            obs.on_stop(state, outcome)
        return outcome


# ---------------------------------------------------------------------
# Front-end: asynchronous tree exploration
# ---------------------------------------------------------------------

@dataclass
class AsyncExplorationResult:
    """Outcome of one asynchronous exploration run.

    ``rounds`` and ``wall_batches`` are the batch analogues of the
    synchronous billed/wall counters; ``clock_time`` is the quantity the
    asynchronous guarantee bounds — the time at which the last
    progressing traversal completed, in normalised time units.
    """

    rounds: int
    wall_batches: int
    clock_time: float
    complete: bool
    all_home: bool
    metrics: Any
    positions: List[int]
    ptree: Any
    clock: AsyncClock
    stop_reason: str

    @property
    def done(self) -> bool:
        """Explored every edge and returned to the root."""
        return self.complete and self.all_home


class AsyncSimulator:
    """Drives an algorithm on a ground-truth tree under per-robot clocks.

    The asynchronous sibling of :class:`~repro.sim.engine.Simulator`:
    same tree/algorithm/team parameters, but time comes from a
    :class:`SpeedSchedule` via the :class:`AsyncEventScheduler` instead
    of the global round barrier.  There is no adversary parameter — the
    speed schedule is the adversary.

    ``max_rounds`` caps *billed batches*.  A batch bills whenever some
    robot moves, and with ``k`` independent clocks up to ``k`` batches
    can carry the work of one synchronous round, so the default cap is
    ``k`` times the synchronous termination bound
    (:func:`~repro.sim.runloop.tree_round_cap`).
    """

    def __init__(
        self,
        tree: Any,
        algorithm: Any,
        k: int,
        speeds: Optional[SpeedSchedule] = None,
        *,
        allow_shared_reveal: bool = True,
        max_rounds: Optional[int] = None,
        observers: Sequence[RoundObserver] = (),
        backend: str = "reference",
    ):
        from .backend import validate_backend

        self.tree = tree
        self.algorithm = algorithm
        self.k = k
        self.speeds = speeds if speeds is not None else UnitSpeed()
        self.allow_shared_reveal = allow_shared_reveal
        self.max_rounds = (
            max_rounds
            if max_rounds is not None
            else k * tree_round_cap(tree.n, tree.depth, slack=3 * tree.n + 100)
        )
        self.observers = list(observers)
        self.backend = validate_backend(backend)

    def run(self) -> AsyncExplorationResult:
        """Run the exploration to termination and return the result."""
        from .engine import AlgorithmPolicy, Exploration, TreeRoundState

        expl = Exploration(self.tree, self.k, self.allow_shared_reveal)
        state = TreeRoundState(expl)
        engine = RoundEngine(
            state=state,
            policy=AlgorithmPolicy(self.algorithm),
            observers=self.observers,
            scheduler=AsyncEventScheduler(self.speeds),
            billed_cap=self.max_rounds,
            # Wall batches exceed billed batches only by trailing all-stay
            # batches, of which quiescence allows at most one per robot.
            wall_cap=self.max_rounds + self.k + 100,
            cap_message=lambda billed, wall: (
                f"{self.algorithm.name} (async/{self.speeds.name}): "
                f"exceeded {self.max_rounds} batches "
                f"(billed={billed}, wall={wall}) "
                f"on tree(n={self.tree.n}, D={self.tree.depth}), k={self.k}"
            ),
            backend=self.backend,
        )
        outcome = engine.run()
        clock = state.clock
        root = self.tree.root
        return AsyncExplorationResult(
            rounds=expl.round,
            wall_batches=outcome.wall_rounds,
            clock_time=clock.completion_time,
            complete=expl.ptree.is_complete(),
            all_home=all(p == root for p in expl.positions),
            metrics=expl.metrics,
            positions=list(expl.positions),
            ptree=expl.ptree,
            clock=clock,
            stop_reason=outcome.stop_reason,
        )


__all__ = [
    "AdversarialSlowdown",
    "AsyncClock",
    "AsyncEventScheduler",
    "AsyncExplorationResult",
    "AsyncSimulator",
    "Scheduler",
    "SpeedSchedule",
    "StochasticSpeed",
    "SyncRoundScheduler",
    "UnitSpeed",
]
