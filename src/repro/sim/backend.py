"""Engine backends: pluggable executors behind :class:`RoundEngine`.

The round engine's *protocol* (state / policy / interference /
observers) is fixed; **how** a run is driven to termination is a
backend decision.  Two backends ship:

* ``reference`` — the dict-based per-round loop in
  :mod:`repro.sim.runloop`, the semantics oracle.  Every model and every
  observer runs here.
* ``array`` — :mod:`repro.sim.array_backend`: flat-array state plus an
  event-driven round loop for the standard BFDN-on-tree model, ~10-30x
  the reference's rounds/sec.  It *declines* configurations outside its
  supported envelope (other algorithms, adversaries, non-batch
  observers, graph/game states) and the engine falls back to the
  reference loop — same results, reference speed — logging the reason
  once per process.

Backends are looked up by name through :func:`resolve_backend`; unknown
names raise the registry-style "known names" ValueError, so the same
message surfaces from the CLI, :class:`~repro.scenario.ScenarioSpec`
validation and the serve daemon.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runloop import RoundEngine, RunOutcome

logger = logging.getLogger(__name__)

#: The default backend: the dict-based loop, able to run everything.
DEFAULT_BACKEND = "reference"

#: Known backend names (sorted; the single authority for validation).
BACKENDS: Tuple[str, ...] = ("array", "reference")


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend, else raise ValueError."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} (known: {', '.join(BACKENDS)})"
        )
    return name


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process.

    Both shipped backends are always available — ``array`` degrades to
    its pure-python path when numpy is missing rather than disappearing.
    The indirection exists so the serve daemon can refuse requests for
    backends a *differently built* server does not carry.
    """
    return BACKENDS


class EngineBackend:
    """One way of driving a :class:`~repro.sim.runloop.RoundEngine`.

    ``execute`` either runs the engine to termination and returns the
    :class:`~repro.sim.runloop.RunOutcome`, or returns ``None`` to
    decline — the engine then falls back to the reference loop.  A
    backend must be *exact*: any outcome it returns (including all state
    and metrics mutations) must be indistinguishable from the reference
    loop's.
    """

    name = "abstract"

    def execute(self, engine: "RoundEngine") -> Optional["RunOutcome"]:
        raise NotImplementedError


class ReferenceBackend(EngineBackend):
    """The dict-based per-round loop (see ``RoundEngine._run_reference``)."""

    name = "reference"

    def execute(self, engine: "RoundEngine") -> Optional["RunOutcome"]:
        """Always decline, routing the engine to its own loop."""
        return None


#: Reasons already logged for declined array runs (log once per process,
#: not once per run — sweeps run thousands of scenarios).
_warned_fallbacks: Set[str] = set()


def note_fallback(reason: str) -> None:
    """Log one warning per distinct fallback reason per process."""
    if reason not in _warned_fallbacks:
        _warned_fallbacks.add(reason)
        logger.warning("backend=array falling back to reference: %s", reason)


def resolve_backend(name: str) -> EngineBackend:
    """The backend instance for ``name`` (validates the name)."""
    validate_backend(name)
    if name == "array":
        from .array_backend import ArrayBackend

        return ArrayBackend.instance()
    return _REFERENCE


_REFERENCE = ReferenceBackend()


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "EngineBackend",
    "ReferenceBackend",
    "available_backends",
    "note_fallback",
    "resolve_backend",
    "validate_backend",
]
