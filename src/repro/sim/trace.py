"""Trace recording and replay.

A :class:`TraceRecorder` wraps any exploration algorithm and logs every
round's robot positions and moves.  Traces serve three purposes: debugging,
golden-file regression tests, and driving visualisations.  A recorded trace
can be *replayed* against the same tree to verify it is a legal execution
(every move valid, synchronous semantics respected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

from ..trees.partial import PartialTree, RevealEvent
from ..trees.tree import Tree
from .engine import Exploration, ExplorationAlgorithm, Move, TreeRoundState
from .runloop import RoundObserver, RoundRecord


@dataclass
class TraceRound:
    """One round of a recorded execution."""

    round: int
    positions_before: List[int]
    moves: Dict[int, Move]


@dataclass
class Trace:
    """A full recorded execution."""

    k: int
    rounds: List[TraceRound] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "k": self.k,
            "rounds": [
                {
                    "round": r.round,
                    "positions": list(r.positions_before),
                    "moves": {str(i): list(m) for i, m in r.moves.items()},
                }
                for r in self.rounds
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        """Inverse of :meth:`to_dict`."""
        trace = cls(k=data["k"])
        for r in data["rounds"]:
            trace.rounds.append(
                TraceRound(
                    round=r["round"],
                    positions_before=list(r["positions"]),
                    moves={int(i): tuple(m) for i, m in r["moves"].items()},
                )
            )
        return trace


class TraceRecorder(ExplorationAlgorithm):
    """Wraps an algorithm and records its moves round by round."""

    def __init__(self, inner: ExplorationAlgorithm):
        self.inner = inner
        self.name = f"traced({inner.name})"
        self.trace: Trace = Trace(k=0)

    def attach(self, expl: Exploration) -> None:
        self.trace = Trace(k=expl.k)
        self.inner.attach(expl)

    def select_moves(self, expl: Exploration, movable: Set[int]) -> Dict[int, Move]:
        moves = self.inner.select_moves(expl, movable)
        self.trace.rounds.append(
            TraceRound(
                round=expl.round,
                positions_before=list(expl.positions),
                moves=dict(moves),
            )
        )
        return moves

    def observe(self, expl: Exploration, events: Sequence[RevealEvent]) -> None:
        self.inner.observe(expl, events)


class TraceObserver(RoundObserver):
    """Round-engine observer that records a replayable :class:`Trace`.

    Unlike :class:`TraceRecorder` (which wraps the algorithm and records
    the moves as *selected*), this hooks the engine itself and records the
    moves that *survived* interference — so the trace replays cleanly even
    for runs under a reactive adversary.  Pass it to ``Simulator`` via the
    ``observers`` parameter, or use ``--observe trace`` from the CLI.
    """

    def __init__(self) -> None:
        self.trace: Trace = Trace(k=0)

    def on_attach(self, state: TreeRoundState) -> None:
        """Start a fresh trace for this run."""
        self.trace = Trace(k=state.expl.k)

    def on_round(self, state: TreeRoundState, record: RoundRecord) -> None:
        """Record the round's pre-move positions and surviving moves."""
        self.trace.rounds.append(
            TraceRound(
                round=record.billed_before,
                positions_before=list(record.before),
                moves=dict(record.surviving_moves()),
            )
        )


def replay(trace: Trace, tree: Tree, allow_shared_reveal: bool = False) -> Tuple[int, PartialTree]:
    """Re-execute a trace on ``tree`` and validate every move.

    Returns the number of (billed) rounds and the final partial tree.
    Raises if any recorded move is illegal, which makes traces usable as
    machine-checked certificates of an execution.
    """
    expl = Exploration(tree, trace.k, allow_shared_reveal)
    everyone = set(range(trace.k))
    for entry in trace.rounds:
        if entry.positions_before != expl.positions:
            raise ValueError(
                f"trace mismatch at round {entry.round}: positions "
                f"{entry.positions_before} != {expl.positions}"
            )
        expl.apply(entry.moves, everyone)
    return expl.round, expl.ptree
