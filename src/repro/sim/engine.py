"""Synchronous round-based exploration engine.

This is the paper's formal model (Section 2): at each round every robot
selects an incident edge (or no move); all robots then move simultaneously
and the partially explored tree is updated with the information brought
back by robots that traversed dangling edges.

Moves are small tuples:

* ``STAY``               — do not move (the paper's ``\\bot``);
* ``UP``                 — move to the parent (interpreted as ``STAY`` at the root);
* ``("down", child)``    — move along an explored edge to ``child``;
* ``("explore", port)``  — traverse the dangling ``port`` at the current node.

The engine validates every move against the partial view, so an algorithm
cannot accidentally use information it does not have.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..trees.partial import PartialTree, RevealEvent
from ..trees.tree import Tree
from .adversary import BreakdownAdversary, NoBreakdowns
from .backend import DEFAULT_BACKEND, validate_backend
from .metrics import ExplorationMetrics
from .runloop import (
    Interference,
    Policy,
    RoundEngine,
    RoundObserver,
    RoundState,
    tree_round_cap,
)

Move = Tuple
STAY: Move = ("stay",)
UP: Move = ("up",)


def down(child: int) -> Move:
    """Move along an explored edge to the explored child ``child``."""
    return ("down", child)


def explore(port: int) -> Move:
    """Traverse the dangling ``port`` at the robot's current node."""
    return ("explore", port)


class MoveError(ValueError):
    """An algorithm selected an illegal move."""


class ExplorationAlgorithm(ABC):
    """Interface implemented by every exploration strategy.

    ``select_moves`` is called once per round with the exploration state
    and the set of robots the (break-down) adversary allows to move; the
    returned dict maps robot indices to moves.  Robots without an entry
    stay in place.
    """

    name = "abstract"

    def attach(self, expl: "Exploration") -> None:
        """Called once before the first round."""

    @abstractmethod
    def select_moves(self, expl: "Exploration", movable: Set[int]) -> Dict[int, Move]:
        """Select this round's moves."""

    def observe(self, expl: "Exploration", events: Sequence[RevealEvent]) -> None:
        """Called after each round with the reveals that occurred."""

    def handle_blocked(self, expl: "Exploration", robot: int, move: Move) -> None:
        """A *reactive* adversary (Remark 8) cancelled this robot's
        selected move after commitment.  Implementations that mutate state
        inside ``select_moves`` must roll that state back here."""


class Exploration:
    """Mutable state of one collaborative exploration run."""

    def __init__(self, tree: Tree, k: int, allow_shared_reveal: bool = False):
        if k < 1:
            raise ValueError("at least one robot is required")
        self.tree = tree
        self.k = k
        #: When False (the default, matching BFDN's Claim 2) two robots may
        #: not select the same dangling edge in the same round.  CTE's model
        #: permits it, so CTE runs set this to True.
        self.allow_shared_reveal = allow_shared_reveal
        self.ptree = PartialTree(tree.root, tree.degree(tree.root))
        self.positions: List[int] = [tree.root] * k
        self.round = 0
        self.metrics = ExplorationMetrics()

    # ------------------------------------------------------------------
    def robots_at(self, v: int) -> List[int]:
        """Robots currently located at node ``v``."""
        return [i for i, p in enumerate(self.positions) if p == v]

    def is_done(self) -> bool:
        """The paper's termination condition: explored and everyone home."""
        return self.ptree.is_complete() and all(
            p == self.tree.root for p in self.positions
        )

    # ------------------------------------------------------------------
    def apply(self, moves: Dict[int, Move], movable: Set[int]) -> List[RevealEvent]:
        """Execute one synchronous round.  Returns the reveal events.

        Increments the round counter only if some robot moved, so the
        final all-stay round that triggers termination is not billed,
        matching the do-while loop of Algorithm 1.

        Accounting invariant: over a full run every robot satisfies
        ``moves + idle == billed rounds`` — each billed round a robot
        either moved or is charged one idle round.  The asynchronous
        scheduler keeps the same identity *per robot clock*
        (``clock.moves[i] + clock.idle[i] == clock.ticks[i]``, asserted
        by :meth:`repro.sim.scheduler.AsyncClock.check`): billed time is
        what the guarantees bound, wall time is billed plus the unbilled
        trailing quiescence, on the global and per-robot clocks alike.
        """
        root = self.tree.root
        new_positions = list(self.positions)
        reveals: Dict[Tuple[int, int], List[int]] = {}
        moved: List[int] = []

        for i, move in moves.items():
            if not 0 <= i < self.k:
                raise MoveError(f"unknown robot {i}")
            if i not in movable:
                raise MoveError(f"robot {i} is blocked this round")
            u = self.positions[i]
            kind = move[0]
            if kind == "stay":
                continue
            if kind == "up":
                if u == root:
                    continue  # up at the root is interpreted as "stay"
                new_positions[i] = self.ptree.parent(u)
                moved.append(i)
            elif kind == "down":
                child = move[1]
                if not self.ptree.is_explored(child) or self.ptree.parent(child) != u:
                    raise MoveError(f"robot {i}: no explored edge {u} -> {child}")
                new_positions[i] = child
                moved.append(i)
            elif kind == "explore":
                port = move[1]
                if port not in self.ptree.dangling_ports(u):
                    raise MoveError(f"robot {i}: port {port} of {u} is not dangling")
                reveals.setdefault((u, port), []).append(i)
                moved.append(i)
            else:
                raise MoveError(f"robot {i}: unknown move {move!r}")

        events: List[RevealEvent] = []
        decide = getattr(self.tree, "decide_degree", None)
        for (u, port), robots in reveals.items():
            if len(robots) > 1 and not self.allow_shared_reveal:
                raise MoveError(
                    f"robots {robots} selected the same dangling edge "
                    f"({u}, port {port}); forbidden in this model"
                )
            if decide is not None:
                # Adaptive adversary (trees.lazy): the node's structure is
                # fixed only now, knowing how many robots arrive.
                decide(u, port, len(robots))
            child = self.tree.port_to(u, port)
            events.append(
                self.ptree.reveal(
                    u, port, child, self.tree.degree(child), by_robot=robots[0]
                )
            )
            for i in robots:
                new_positions[i] = child

        if moved:
            self.round += 1
            self.metrics.rounds = self.round
            self.metrics.total_moves += len(moved)
            for i in moved:
                self.metrics.moves_per_robot[i] += 1
            stationary = self.k - len(moved)
            if stationary:
                # A robot is idle in a billed round iff it did not traverse
                # an edge — whether it submitted "stay", "up" at the root
                # (the paper's stay convention), no move at all, or was
                # blocked.  Counting by complement of ``moved`` keeps
                # ``moves_per_robot[i] + idle_per_robot[i] == rounds``.
                self.metrics.idle_rounds += 1
                moved_set = set(moved)
                for i in range(self.k):
                    if i not in moved_set:
                        self.metrics.idle_per_robot[i] += 1
        self.metrics.reveals += len(events)
        self.positions = new_positions
        return events


class TreeRoundState(RoundState):
    """Adapts an :class:`Exploration` to the runloop protocol."""

    def __init__(self, expl: Exploration):
        self.expl = expl
        self._team = frozenset(range(expl.k))

    def apply(self, moves, movable):
        """Execute one synchronous round through the move validator."""
        return self.expl.apply(moves, movable)

    def billed_rounds(self) -> int:
        """Rounds in which at least one robot moved (Algorithm 1's ``t``)."""
        return self.expl.round

    def is_complete(self) -> bool:
        """Every edge explored (robots need not be home)."""
        return self.expl.ptree.is_complete()

    def progress_token(self):
        """Robot positions — in the tree model every effect moves a robot."""
        return list(self.expl.positions)

    def team(self):
        """All ``k`` robots."""
        return self._team


class AlgorithmPolicy(Policy):
    """Adapts an :class:`ExplorationAlgorithm` to the runloop protocol."""

    def __init__(self, algorithm: ExplorationAlgorithm):
        self.algorithm = algorithm
        self.name = algorithm.name

    def attach(self, state: TreeRoundState) -> None:
        """Attach the wrapped algorithm to the exploration state."""
        self.algorithm.attach(state.expl)

    def select_moves(self, state: TreeRoundState, movable) -> Dict[int, Move]:
        """Delegate this round's move selection to the algorithm."""
        return self.algorithm.select_moves(state.expl, movable)

    def observe(self, state: TreeRoundState, events) -> None:
        """Forward the round's reveal events to the algorithm."""
        self.algorithm.observe(state.expl, events)

    def handle_blocked(self, state: TreeRoundState, agent: int, move: Move) -> None:
        """Forward a reactive-adversary cancellation to the algorithm."""
        self.algorithm.handle_blocked(state.expl, agent, move)


class BreakdownInterference(Interference):
    """Wraps a :class:`~repro.sim.adversary.BreakdownAdversary` as the
    runloop's pre-commitment mask (Section 4.2)."""

    def __init__(self, adversary: BreakdownAdversary):
        self.adversary = adversary
        self.horizon = getattr(adversary, "horizon", 0)

    def movable(self, t: int, state: TreeRoundState):
        """The robots the break-down schedule allows to move at ``t``."""
        return self.adversary.allowed(t, len(state.team()))


@dataclass
class ExplorationResult:
    """Outcome of a simulated exploration."""

    rounds: int
    #: Wall-clock rounds including rounds where every robot was blocked
    #: (== ``rounds`` in the standard model, possibly larger under a
    #: break-down adversary).
    wall_rounds: int
    complete: bool
    all_home: bool
    metrics: ExplorationMetrics
    positions: List[int]
    ptree: PartialTree

    @property
    def done(self) -> bool:
        """Explored every edge and returned to the root."""
        return self.complete and self.all_home


class Simulator:
    """Drives an :class:`ExplorationAlgorithm` on a ground-truth tree.

    Parameters
    ----------
    tree:
        The (hidden) tree to explore.
    algorithm:
        The strategy under test.
    k:
        Team size.
    adversary:
        Optional break-down adversary (Section 4.2); defaults to the
        standard model where every robot moves every round.
    stop_when_complete:
        Stop as soon as every edge is explored, without waiting for the
        robots to return (the adversarial model's success criterion).
    max_rounds:
        Safety cap; defaults to the termination bound ``3 n D`` from the
        paper's termination argument (plus slack for tiny trees), via
        :func:`repro.sim.runloop.tree_round_cap`.
    observers:
        Optional :class:`~repro.sim.runloop.RoundObserver` hooks run
        once per round (trace capture, per-round metrics, early stops).
    backend:
        Engine backend driving the run (see :mod:`repro.sim.backend`):
        ``"reference"`` (default) or ``"array"``.  Results are
        backend-independent by contract; unknown names raise
        ``ValueError`` here, before any work happens.
    """

    def __init__(
        self,
        tree: Tree,
        algorithm: ExplorationAlgorithm,
        k: int,
        adversary: Optional[BreakdownAdversary] = None,
        stop_when_complete: bool = False,
        max_rounds: Optional[int] = None,
        allow_shared_reveal: bool = False,
        observers: Sequence[RoundObserver] = (),
        backend: str = DEFAULT_BACKEND,
    ):
        self.tree = tree
        self.algorithm = algorithm
        self.k = k
        self.adversary = adversary or NoBreakdowns()
        self.stop_when_complete = stop_when_complete
        self.max_rounds = (
            max_rounds
            if max_rounds is not None
            else tree_round_cap(tree.n, tree.depth, slack=3 * tree.n + 100)
        )
        self.allow_shared_reveal = allow_shared_reveal
        self.observers = list(observers)
        self.backend = validate_backend(backend)

    def run(self) -> ExplorationResult:
        """Run the exploration to termination and return the result.

        Drives the shared :class:`~repro.sim.runloop.RoundEngine`: the
        wall clock (which paces the break-down adversary) advances every
        round, including rounds where every robot is blocked; the billed
        round counter ``expl.round`` only advances when somebody moves,
        matching the do-while loop of Algorithm 1.
        """
        expl = Exploration(self.tree, self.k, self.allow_shared_reveal)
        horizon = getattr(self.adversary, "horizon", 0)
        engine = RoundEngine(
            state=TreeRoundState(expl),
            policy=AlgorithmPolicy(self.algorithm),
            interference=BreakdownInterference(self.adversary),
            observers=self.observers,
            stop_when_complete=self.stop_when_complete,
            billed_cap=self.max_rounds,
            wall_cap=self.max_rounds + 2 * horizon + 100,
            cap_message=lambda billed, wall: (
                f"{self.algorithm.name}: exceeded {self.max_rounds} rounds "
                f"(billed={billed}, wall={wall}) "
                f"on tree(n={self.tree.n}, D={self.tree.depth}), k={self.k}"
            ),
            backend=self.backend,
        )
        outcome = engine.run()
        root = self.tree.root
        return ExplorationResult(
            rounds=expl.round,
            wall_rounds=outcome.wall_rounds,
            complete=expl.ptree.is_complete(),
            all_home=all(p == root for p in expl.positions),
            metrics=expl.metrics,
            positions=list(expl.positions),
            ptree=expl.ptree,
        )
