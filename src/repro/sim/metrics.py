"""Metrics collected during a simulated exploration.

The fields mirror the quantities the paper's analysis reasons about:
rounds, idle rounds (Claim 1), per-depth re-anchor counts (Lemma 2),
edge first-traversals (Claim 2) and per-robot move counts (used for the
``T_i^1 / T_i^2`` decomposition in the proof of Theorem 1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ReanchorRecord:
    """One call to ``Reanchor`` that assigned a new anchor."""

    round: int
    robot: int
    anchor: int
    depth: int


@dataclass
class ExplorationMetrics:
    """Aggregated counters for one exploration run."""

    rounds: int = 0
    #: Rounds in which at least one robot did not move (Claim 1 bounds
    #: this by D + 1 for BFDN).
    idle_rounds: int = 0
    #: Total robot-moves (edges traversed, counted with multiplicity).
    total_moves: int = 0
    #: Moves per robot.
    moves_per_robot: Counter = field(default_factory=Counter)
    #: Idle (non-moving) rounds per robot.
    idle_per_robot: Counter = field(default_factory=Counter)
    #: Number of dangling-edge first traversals (== n - 1 at the end).
    reveals: int = 0
    #: Re-anchor log, appended by anchor-based algorithms.
    reanchors: List[ReanchorRecord] = field(default_factory=list)

    def reanchors_per_depth(self) -> Dict[int, int]:
        """Number of ``Reanchor`` calls returning an anchor at each depth.

        Lemma 2: for BFDN this is at most ``k (min(log k, log D) + 3)`` at
        every depth ``d >= 1``.
        """
        counts: Counter = Counter()
        for rec in self.reanchors:
            counts[rec.depth] += 1
        return dict(counts)

    def log_reanchor(self, round_: int, robot: int, anchor: int, depth: int) -> None:
        """Record one anchor assignment (called by algorithms)."""
        self.reanchors.append(ReanchorRecord(round_, robot, anchor, depth))

    def summary(self) -> Dict[str, float]:
        """A flat summary convenient for tables."""
        return {
            "rounds": self.rounds,
            "idle_rounds": self.idle_rounds,
            "total_moves": self.total_moves,
            "reveals": self.reveals,
            "reanchor_calls": len(self.reanchors),
        }
