"""Synchronous round-based simulation engine for collaborative exploration."""

from .adversary import (
    BreakdownAdversary,
    NoBreakdowns,
    RandomBreakdowns,
    RoundRobinBreakdowns,
    ScheduleAdversary,
    TargetedBreakdowns,
)
from .engine import (
    STAY,
    UP,
    Exploration,
    ExplorationAlgorithm,
    ExplorationResult,
    Move,
    MoveError,
    Simulator,
    down,
    explore,
)
from .metrics import ExplorationMetrics, ReanchorRecord
from .reactive import (
    BlockDeepest,
    BlockExplorers,
    RandomReactive,
    ReactiveAdversary,
    ReactiveRunResult,
    run_reactive,
)
from .timeseries import RoundSample, TimeSeries, TimeSeriesRecorder
from .trace import Trace, TraceRecorder, replay

__all__ = [
    "Exploration",
    "ExplorationAlgorithm",
    "ExplorationResult",
    "ExplorationMetrics",
    "ReanchorRecord",
    "Simulator",
    "Move",
    "MoveError",
    "STAY",
    "UP",
    "down",
    "explore",
    "BreakdownAdversary",
    "NoBreakdowns",
    "RandomBreakdowns",
    "RoundRobinBreakdowns",
    "ScheduleAdversary",
    "TargetedBreakdowns",
    "Trace",
    "TraceRecorder",
    "replay",
    "TimeSeries",
    "TimeSeriesRecorder",
    "RoundSample",
    "ReactiveAdversary",
    "ReactiveRunResult",
    "BlockExplorers",
    "BlockDeepest",
    "RandomReactive",
    "run_reactive",
]
