"""One instrumented round-engine protocol behind every run loop.

Historically the repo reproduced the paper's models with four
independently written loops — :meth:`repro.sim.engine.Simulator.run`
(Theorem 1 and the break-down adversaries of Proposition 7),
:func:`repro.sim.reactive.run_reactive` (Remark 8),
:func:`repro.graphs.exploration.run_graph_bfdn` (Proposition 9) and
:func:`repro.game.play.play_game` (Theorem 3) — each with its own move
validation, round caps, metrics and termination tests.  This module is
the single round-stepping kernel they all plug into now.  A model is a
small protocol:

* :class:`RoundState` — mutable state of the run: billed-round counter,
  completion test, a progress token (so "did anything change?" is one
  comparison) and ``apply`` which executes one synchronous round;
* :class:`Policy` — selects each round's moves (and is told about
  cancelled moves so it can roll back speculative state);
* :class:`Interference` — the unified adversary seam: a *pre-commitment*
  mask (``movable`` — the break-down adversaries of Section 4.2) and a
  *post-commitment* strike (``filter`` — the reactive adversaries of
  Remark 8);
* a list of :class:`RoundObserver` hooks — per-round metrics, trace
  capture, early-stop predicates and progress events for the
  orchestrator's event stream.

The kernel owns, in exactly one place: the wall-clock vs billed-round
accounting, the ``3nD``-style safety caps (:func:`tree_round_cap`,
:func:`graph_round_cap`) and the "nobody moved although everyone could"
quiescence test.  *Time itself* is pluggable: the engine delegates its
loop to a :class:`~repro.sim.scheduler.Scheduler` —
``SyncRoundScheduler`` (the default, the lockstep loop that used to
live here verbatim) or ``AsyncEventScheduler`` (per-robot clocks driven
by speed schedules, the asynchronous model of arXiv:2507.15658).  A
future model is one new ``Policy`` + ``Interference`` (and, if it needs
its own notion of time, a ``Scheduler``), not a fifth hand-rolled loop.
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
)

logger = logging.getLogger(__name__)

#: Version tag of the round-stepping kernel, recorded per bench row so a
#: snapshot can be traced to the engine that produced it.  Bump on any
#: change to round semantics or the backend/scheduler dispatch.
#: engine-v3 = the clock moved behind the Scheduler seam (sync semantics
#: unchanged; SyncRoundScheduler is the engine-v2 loop verbatim).
ENGINE_VERSION = "engine-v3"

# Stop reasons reported in :class:`RunOutcome`.
STOP_COMPLETE = "complete"
STOP_QUIESCENT = "quiescent"
STOP_CAP = "cap"
STOP_OBSERVER = "observer"


# ---------------------------------------------------------------------
# Safety caps (the paper's termination argument, derived once)
# ---------------------------------------------------------------------

def tree_round_cap(n: int, depth: int, slack: int = 0) -> int:
    """The ``3 n D`` termination bound for tree exploration, plus slack.

    The paper's termination argument (proof of Theorem 1): every billed
    round moves at least one robot, each of the ``n - 1`` edges is first
    traversed once, and every excursion of depth ``d <= D`` pays at most
    ``2d`` travel rounds per explored edge plus the final return — so
    ``3 n max(D, 1)`` rounds strictly over-approximates any legal run.
    ``slack`` absorbs per-caller extras (tiny trees, adversary horizons).
    """
    return 3 * n * max(depth, 1) + slack


def graph_round_cap(num_edges: int, radius: int, k: int, slack: int = 100) -> int:
    """Safety cap for graph exploration (Proposition 9's accounting).

    Every edge is traversed at most twice as a tree edge and at most
    twice more when closed (``6 m``), plus re-anchoring travel bounded by
    ``3 (D + 1)^2`` per robot.
    """
    return 6 * num_edges + 3 * (radius + 1) ** 2 * (k + 2) + slack


class RoundCapExceeded(RuntimeError):
    """A run overran its billed or wall-clock round cap."""


# ---------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------

class RoundState(ABC):
    """Mutable state stepped by the :class:`RoundEngine`.

    Implementations wrap the model's own state object (an
    ``Exploration``, a ``GraphExploration``, an ``UrnBoard``) and expose
    the four things the kernel needs: apply one round, count billed
    rounds, test completion, and summarise progress as a token.
    """

    @abstractmethod
    def apply(self, moves: Any, movable: Optional[Set[int]]) -> Any:
        """Execute one synchronous round; returns the round's events."""

    @abstractmethod
    def billed_rounds(self) -> int:
        """Rounds billed so far (rounds in which somebody moved)."""

    @abstractmethod
    def is_complete(self) -> bool:
        """The model's success criterion (exploration / game over)."""

    @abstractmethod
    def progress_token(self) -> Any:
        """A comparable snapshot; two equal tokens mean "nothing changed"."""

    def team(self) -> Optional[Set[int]]:
        """The full agent set, or ``None`` for models without agents."""
        return None


class Policy(ABC):
    """Selects each round's moves for a :class:`RoundState`."""

    name = "policy"

    def attach(self, state: RoundState) -> None:
        """Called once before the first round."""

    @abstractmethod
    def select_moves(self, state: RoundState, movable: Optional[Set[int]]) -> Any:
        """Select this round's moves (shape is model-specific)."""

    def observe(self, state: RoundState, events: Any) -> None:
        """Called after each round with the events ``apply`` returned."""

    def handle_blocked(self, state: RoundState, agent: int, move: Any) -> None:
        """A post-commitment strike cancelled ``agent``'s selected move;
        roll back any speculative state committed in ``select_moves``."""


class Interference(ABC):
    """Unified adversary seam: pre-commitment masks + post-commitment
    strikes.

    Subsumes both adversary families of the paper:
    ``BreakdownAdversary.allowed`` (Section 4.2 — the adversary decides
    *before* seeing the moves) maps to :meth:`movable`, and
    ``ReactiveAdversary.block`` (Remark 8 — the adversary observes the
    selected moves first) maps to :meth:`filter`.
    """

    #: Rounds after which the adversary stops interfering; adapters use
    #: it to pad wall-clock caps and quiescence grace periods.
    horizon: int = 0

    def movable(self, t: int, state: RoundState) -> Optional[Set[int]]:
        """Agents allowed to move at wall-clock round ``t`` (pre-commit);
        ``None`` means everyone."""
        return state.team()

    def filter(self, t: int, state: RoundState, moves: Any) -> Set[int]:
        """Agents whose *selected* moves are struck out (post-commit).

        Dropping any subset of a legal synchronous move set leaves a
        legal move set (per-round dangling-edge selections are distinct),
        so the surviving moves always execute without error.
        """
        return set()


class NoInterference(Interference):
    """The standard model: everyone moves, nothing is struck."""


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one kernel round (handed to every observer)."""

    #: Wall-clock index of this round (0-based).
    t: int
    #: Billed-round counter before / after ``apply``.
    billed_before: int
    billed: int
    #: Moves as selected by the policy (pre-strike).
    moves: Any
    #: Agents whose moves the interference struck out.
    struck: Set[int]
    #: Pre-commitment mask this round (``None`` = everyone).
    movable: Optional[Set[int]]
    #: Progress token before ``apply`` (e.g. the previous positions).
    before: Any
    #: Whether the state changed this round.
    progressed: bool
    #: Model-specific events returned by ``apply`` (e.g. reveals).
    events: Any = None

    def surviving_moves(self) -> Any:
        """The moves that actually executed (selected minus struck)."""
        if not self.struck:
            return self.moves
        return {i: m for i, m in self.moves.items() if i not in self.struck}


class RoundObserver:
    """Instrumentation hook notified once per kernel round.

    Subclass and override any of the four methods; observers must not
    mutate the state.  ``should_stop`` may return a reason string to
    terminate the run early (reported as ``observer:<reason>``).
    """

    #: Observers that set this to True receive :meth:`on_phase_times`
    #: each round; the engine only pays for clock reads when at least one
    #: attached observer asks for them, so the default path stays free.
    wants_phase_timing = False

    #: Observers that set this to True accept a single :meth:`on_batch`
    #: call summarising a whole run instead of per-round ``on_round``
    #: records.  A fast backend may only skip materialising per-round
    #: records when *every* attached observer is batch-capable; with any
    #: per-round observer attached the engine routes through the
    #: reference loop, so such observers see identical round events from
    #: either backend.
    supports_batch = False

    def on_attach(self, state: RoundState) -> None:
        """Called once before the first round."""

    def on_round(self, state: RoundState, record: RoundRecord) -> None:
        """Called after every round with its :class:`RoundRecord`."""

    def on_batch(self, state: RoundState, summary: Dict[str, Any]) -> None:
        """Whole-run summary from a batch-mode backend (only when
        ``supports_batch``): a dict with at least ``rounds``, ``billed``
        and ``reveals``.  ``on_stop`` still follows."""

    def on_phase_times(
        self, select_s: float, apply_s: float, observe_s: float
    ) -> None:
        """Per-phase wall time of the round that is about to be reported
        via :meth:`on_round` (only called when ``wants_phase_timing``):
        move selection (mask + policy + strikes), ``state.apply``, and
        ``policy.observe``."""

    def should_stop(self, state: RoundState, record: RoundRecord) -> Optional[str]:
        """Return a reason string to stop the run after this round."""
        return None

    def on_stop(self, state: RoundState, outcome: "RunOutcome") -> None:
        """Called once when the run terminates."""


@dataclass(frozen=True)
class RunOutcome:
    """Kernel-level accounting of one run.

    ``wall_rounds`` advances every executed round (including rounds in
    which every robot was blocked); ``billed_rounds`` only advances when
    somebody moved — the do-while convention of Algorithm 1.  Equality
    holds exactly when no round was fully stalled.
    """

    wall_rounds: int
    billed_rounds: int
    stop_reason: str


# ---------------------------------------------------------------------
# The kernel
# ---------------------------------------------------------------------

@dataclass
class RoundEngine:
    """The single round-stepping loop every model adapter drives.

    Per round: consult the interference's pre-commitment mask, let the
    policy select moves, let the interference strike a subset (rolling
    each cancelled move back through ``Policy.handle_blocked``), apply
    the survivors, notify observers, then run the termination tests —
    completion, observer early-stop, quiescence, and the round caps —
    that previously lived (inconsistently) in four separate loops.

    Parameters
    ----------
    stop_when_complete:
        Check ``state.is_complete()`` before each round and stop with
        ``"complete"`` (the adversarial models' success criterion).
    billed_stop:
        Graceful billed-round budget: stop (don't raise) once
        ``state.billed_rounds()`` reaches it — the game's cap semantics.
    billed_cap / wall_cap:
        Hard safety caps; overrunning either raises
        :class:`RoundCapExceeded` with ``cap_message``'s text.
    quiescence_grace:
        Wall-clock rounds during which quiescence does not terminate the
        run (reactive adversaries may legitimately stall early rounds).
    bill_quiescent_round:
        Whether the final quiescent round advances the wall clock
        (``False`` matches Algorithm 1's unbilled final all-stay round).
    backend:
        Which engine backend drives the run (see
        :mod:`repro.sim.backend`).  ``"reference"`` is the scheduler
        loop; ``"array"`` is the flat-array fast path, which silently
        falls back here for configurations outside its envelope.
        Results are backend-independent by contract.
    scheduler:
        Who owns the clock (see :mod:`repro.sim.scheduler`).  ``None``
        (the default) means the lockstep global round clock
        (``SyncRoundScheduler``); an ``AsyncEventScheduler`` drives
        per-robot clocks from a speed schedule instead.  Backends only
        accelerate the synchronous clock, so a non-sync scheduler makes
        the array backend decline and fall back here.
    """

    state: RoundState
    policy: Policy
    interference: Interference = field(default_factory=NoInterference)
    observers: Sequence[RoundObserver] = ()
    stop_when_complete: bool = False
    billed_stop: Optional[int] = None
    billed_cap: Optional[int] = None
    wall_cap: Optional[int] = None
    quiescence_grace: int = 0
    bill_quiescent_round: bool = False
    cap_message: Optional[Callable[[int, int], str]] = None
    backend: str = "reference"
    scheduler: Optional[Any] = None

    def run(self) -> RunOutcome:
        """Drive the state to termination and return the accounting."""
        if self.backend != "reference":
            from .backend import resolve_backend

            outcome = resolve_backend(self.backend).execute(self)
            if outcome is not None:
                return outcome
        if self.scheduler is not None:
            return self.scheduler.run(self)
        return self._run_reference()

    def _run_reference(self) -> RunOutcome:
        """The per-round lockstep loop (the semantics oracle).

        Delegates to :class:`~repro.sim.scheduler.SyncRoundScheduler`,
        where the loop body lives verbatim since the scheduler refactor.
        """
        from .scheduler import SyncRoundScheduler

        return SyncRoundScheduler().run(self)


# ---------------------------------------------------------------------
# Stock observers
# ---------------------------------------------------------------------

class RoundLog(RoundObserver):
    """Keeps every :class:`RoundRecord` (optionally the last ``limit``)."""

    def __init__(self, limit: Optional[int] = None):
        self.limit = limit
        self.records: List[RoundRecord] = []

    def on_attach(self, state: RoundState) -> None:
        """Reset the log for a fresh run."""
        self.records = []

    def on_round(self, state: RoundState, record: RoundRecord) -> None:
        """Append the record, evicting the oldest past ``limit``."""
        self.records.append(record)
        if self.limit is not None and len(self.records) > self.limit:
            del self.records[0]


class InterferenceCounter(RoundObserver):
    """Counts blocked vs executed *mover* moves across the run.

    Reproduces the accounting of the reactive harness: a struck move
    counts as blocked only if it was an actual move (not a stay), and a
    surviving non-stay move counts as executed.
    """

    def __init__(self) -> None:
        self.blocked_moves = 0
        self.executed_moves = 0

    @staticmethod
    def _is_mover(move: Any) -> bool:
        return isinstance(move, tuple) and bool(move) and move[0] != "stay"

    def on_attach(self, state: RoundState) -> None:
        """Reset the counters for a fresh run."""
        self.blocked_moves = 0
        self.executed_moves = 0

    def on_round(self, state: RoundState, record: RoundRecord) -> None:
        """Accumulate this round's blocked and executed mover counts."""
        moves = record.moves
        if not isinstance(moves, dict):
            return
        for agent, move in moves.items():
            if not self._is_mover(move):
                continue
            if agent in record.struck:
                self.blocked_moves += 1
            else:
                self.executed_moves += 1


class EarlyStop(RoundObserver):
    """Stops the run once ``predicate(state, record)`` holds."""

    def __init__(
        self,
        predicate: Callable[[RoundState, RoundRecord], bool],
        reason: str = "early-stop",
    ):
        self.predicate = predicate
        self.reason = reason

    def should_stop(self, state: RoundState, record: RoundRecord) -> Optional[str]:
        """Return the configured reason once the predicate holds."""
        return self.reason if self.predicate(state, record) else None


class ProgressEvents(RoundObserver):
    """Feeds per-round progress into the orchestrator's event stream.

    Every ``every`` rounds (and once at termination) the observer calls
    ``sink`` with a dict event shaped like the orchestrator's
    ``SweepEvent`` payloads: ``kind="progress"``, the run's ``label``,
    the wall/billed round counters and a detail string.  Pass
    ``ProgressTracker``-backed sinks via
    :func:`repro.orchestrator.events.progress_sink`.
    """

    def __init__(
        self,
        sink: Callable[[Dict[str, Any]], None],
        label: str = "",
        every: int = 100,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.sink = sink
        self.label = label
        self.every = every

    def _emit(self, record_t: int, billed: int, detail: str) -> None:
        self.sink(
            {
                "kind": "progress",
                "label": self.label,
                "wall_round": record_t,
                "billed_round": billed,
                "detail": detail,
            }
        )

    def on_round(self, state: RoundState, record: RoundRecord) -> None:
        """Emit a progress event every ``every`` rounds."""
        if (record.t + 1) % self.every == 0:
            self._emit(record.t + 1, record.billed, "in progress")

    def on_stop(self, state: RoundState, outcome: RunOutcome) -> None:
        """Emit the final progress event with the stop reason."""
        self._emit(outcome.wall_rounds, outcome.billed_rounds, outcome.stop_reason)


__all__ = [
    "ENGINE_VERSION",
    "STOP_CAP",
    "STOP_COMPLETE",
    "STOP_OBSERVER",
    "STOP_QUIESCENT",
    "EarlyStop",
    "Interference",
    "InterferenceCounter",
    "NoInterference",
    "Policy",
    "ProgressEvents",
    "RoundCapExceeded",
    "RoundEngine",
    "RoundLog",
    "RoundObserver",
    "RoundRecord",
    "RoundState",
    "RunOutcome",
    "graph_round_cap",
    "tree_round_cap",
]
