"""Break-down adversaries (Section 4.2 of the paper).

An adversary decides, at each round ``t`` and for each robot ``i``, whether
the robot is allowed to move (``M[t][i] = 1``) or is stalled at its current
location.  The paper requires the schedule to contain finitely many 1s for
the impossibility-of-return discussion, but for simulation we only need the
schedule to *eventually* allow enough moves: Proposition 7 states that all
edges are visited once the average number of allowed moves per robot
reaches ``2n/k + D^2 (log k + 3)``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Sequence, Set


class BreakdownAdversary(ABC):
    """Decides which robots may move at each round."""

    #: Rounds after which the adversary stops interfering (all adversaries
    #: here are finite-horizon so simulations terminate); the simulator
    #: uses this to size its wall-clock safety cap.
    horizon: int = 0

    @abstractmethod
    def allowed(self, round_: int, k: int) -> Set[int]:
        """The set of robot indices allowed to move at ``round_``."""

    def average_allowed(self, rounds: int, k: int) -> float:
        """``A(M)`` restricted to the first ``rounds`` rounds: the average
        number of allowed moves per robot."""
        total = sum(len(self.allowed(t, k)) for t in range(rounds))
        return total / k


class NoBreakdowns(BreakdownAdversary):
    """The standard synchronous model: everyone moves every round."""

    def allowed(self, round_: int, k: int) -> Set[int]:
        return set(range(k))


class ScheduleAdversary(BreakdownAdversary):
    """An explicit schedule: ``schedule[t]`` lists the robots allowed at
    round ``t``; rounds beyond the schedule allow everyone (so simulations
    terminate)."""

    def __init__(self, schedule: Sequence[Sequence[int]]):
        self._schedule: List[Set[int]] = [set(s) for s in schedule]
        self.horizon = len(self._schedule)

    def allowed(self, round_: int, k: int) -> Set[int]:
        if round_ < len(self._schedule):
            return {i for i in self._schedule[round_] if 0 <= i < k}
        return set(range(k))


class RandomBreakdowns(BreakdownAdversary):
    """Each robot independently allowed with probability ``p`` each round,
    for the first ``horizon`` rounds (everyone moves afterwards)."""

    def __init__(self, p: float, horizon: int, seed: int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._cache: List[Set[int]] = []

    def allowed(self, round_: int, k: int) -> Set[int]:
        if round_ >= self.horizon:
            return set(range(k))
        while len(self._cache) <= round_:
            self._cache.append(
                {i for i in range(k) if self._rng.random() < self.p}
            )
        return self._cache[round_]


class RoundRobinBreakdowns(BreakdownAdversary):
    """Blocks a rotating window of ``num_blocked`` robots each round, for
    the first ``horizon`` rounds."""

    def __init__(self, num_blocked: int, horizon: int):
        if num_blocked < 0:
            raise ValueError("num_blocked must be >= 0")
        self.num_blocked = num_blocked
        self.horizon = horizon

    def allowed(self, round_: int, k: int) -> Set[int]:
        if round_ >= self.horizon:
            return set(range(k))
        blocked = {(round_ + j) % k for j in range(min(self.num_blocked, k))}
        return set(range(k)) - blocked


class TargetedBreakdowns(BreakdownAdversary):
    """Permanently blocks a fixed subset of robots for ``horizon`` rounds.

    This is the adversary from the paper's remark that the ``log(Delta)``
    refinement of Lemma 2 fails under break-downs: the adversary can pin
    robots at a chosen anchor.
    """

    def __init__(self, blocked: Sequence[int], horizon: int):
        self.blocked = set(blocked)
        self.horizon = horizon

    def allowed(self, round_: int, k: int) -> Set[int]:
        if round_ >= self.horizon:
            return set(range(k))
        return set(range(k)) - self.blocked
