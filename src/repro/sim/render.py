"""ASCII rendering of exploration states — the terminal heir of the
paper's Python demo (acknowledgements: "a Python demo ... available at
github.com/Romcos/BFDN").

``render_state`` draws the explored tree with robot positions and
dangling-edge markers; ``animate`` replays a recorded trace frame by
frame.  Intended for small trees (n up to a few hundred).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..trees.partial import PartialTree
from ..trees.tree import Tree
from .engine import Exploration
from .trace import Trace


def render_state(
    ptree: PartialTree,
    positions: Sequence[int],
    max_nodes: int = 400,
) -> str:
    """The explored tree as an indented outline.

    Each explored node shows its id, the robots standing on it (``R3``)
    and one ``?`` per dangling edge.
    """
    robots_at: Dict[int, List[int]] = {}
    for i, p in enumerate(positions):
        robots_at.setdefault(p, []).append(i)

    lines: List[str] = []
    stack: List[tuple] = [(ptree.root, 0)]
    count = 0
    while stack:
        node, depth = stack.pop()
        count += 1
        if count > max_nodes:
            lines.append("  ... (truncated)")
            break
        marks = ""
        if node in robots_at:
            marks += " " + ",".join(f"R{i}" for i in robots_at[node])
        dangling = len(ptree.dangling_ports(node))
        if dangling:
            marks += " " + "?" * dangling
        lines.append(f"{'  ' * depth}{node}{marks}")
        for child in reversed(ptree.explored_children(node)):
            stack.append((child, depth + 1))
    return "\n".join(lines)


def render_summary(expl: Exploration) -> str:
    """One status line for progress displays."""
    ptree = expl.ptree
    return (
        f"round {expl.round}: {ptree.num_explored} nodes explored, "
        f"{ptree.num_dangling} dangling, "
        f"robots at {sorted(set(expl.positions))}"
    )


def animate(trace: Trace, tree: Tree, limit: Optional[int] = None) -> Iterator[str]:
    """Replay a trace, yielding one rendered frame per round."""
    expl = Exploration(tree, trace.k)
    everyone = set(range(trace.k))
    yield render_state(expl.ptree, expl.positions)
    for idx, entry in enumerate(trace.rounds):
        if limit is not None and idx >= limit:
            return
        expl.apply(entry.moves, everyone)
        yield render_state(expl.ptree, expl.positions)
