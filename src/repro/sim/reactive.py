"""Reactive break-down adversaries (the paper's Remark 8).

Remark 8 suggests a stronger adversarial setting: the adversary *observes
the moves the robots have selected* before choosing which robots to
block.  This module implements that model: each round, the algorithm
commits its moves, the reactive adversary inspects them (and the whole
exploration state) and strikes out a subset, and only the surviving moves
execute.  The paper leaves the analysis of this model open; the harness
lets us probe it empirically (see ``test_bench_reactive.py``).

Blocking is *sound* with respect to the engine's rules: dropping a subset
of a legal synchronous move set leaves a legal move set (dangling-edge
selections are distinct per round, so removing some cannot create a
conflict).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .engine import Exploration, ExplorationAlgorithm, ExplorationResult, Move


class ReactiveAdversary(ABC):
    """Chooses which robots to block *after* seeing their selected moves."""

    #: Rounds after which the adversary stops interfering.
    horizon: int = 0

    @abstractmethod
    def block(
        self, round_: int, expl: Exploration, moves: Dict[int, Move]
    ) -> Set[int]:
        """The robots whose moves are cancelled this round."""


class BlockExplorers(ReactiveAdversary):
    """The nastiest simple policy: block (a fraction of) the robots that
    are about to traverse a dangling edge, delaying every discovery."""

    def __init__(self, budget_per_round: int, horizon: int):
        if budget_per_round < 0:
            raise ValueError("budget_per_round must be >= 0")
        self.budget_per_round = budget_per_round
        self.horizon = horizon

    def block(self, round_, expl, moves):
        if round_ >= self.horizon:
            return set()
        explorers = sorted(i for i, m in moves.items() if m[0] == "explore")
        return set(explorers[: self.budget_per_round])


class BlockDeepest(ReactiveAdversary):
    """Blocks the deepest moving robots — starving the depth-first part."""

    def __init__(self, budget_per_round: int, horizon: int):
        self.budget_per_round = budget_per_round
        self.horizon = horizon

    def block(self, round_, expl, moves):
        if round_ >= self.horizon:
            return set()
        movers = [
            (expl.ptree.node_depth(expl.positions[i]), i)
            for i, m in moves.items()
            if m[0] != "stay"
        ]
        movers.sort(reverse=True)
        return {i for _, i in movers[: self.budget_per_round]}


class RandomReactive(ReactiveAdversary):
    """Blocks each selected mover independently with probability ``p``."""

    def __init__(self, p: float, horizon: int, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p
        self.horizon = horizon
        self._rng = random.Random(seed)

    def block(self, round_, expl, moves):
        if round_ >= self.horizon:
            return set()
        return {
            i
            for i, m in moves.items()
            if m[0] != "stay" and self._rng.random() < self.p
        }


@dataclass
class ReactiveRunResult:
    """Outcome of a reactive-adversary run."""

    result: ExplorationResult
    blocked_moves: int
    executed_moves: int

    @property
    def interference(self) -> float:
        """Fraction of selected moves the adversary cancelled."""
        total = self.blocked_moves + self.executed_moves
        return self.blocked_moves / total if total else 0.0


def run_reactive(
    tree,
    algorithm: ExplorationAlgorithm,
    k: int,
    adversary: ReactiveAdversary,
    max_wall_rounds: Optional[int] = None,
) -> ReactiveRunResult:
    """Drive an exploration where the adversary strikes selected moves.

    Stops as soon as the tree is completely explored (as in Section 4.2,
    robots need not return home against an adversary).
    """
    expl = Exploration(tree, k)
    algorithm.attach(expl)
    everyone = set(range(k))
    cap = (
        max_wall_rounds
        if max_wall_rounds is not None
        else 3 * tree.n * max(tree.depth, 1) + 2 * adversary.horizon + 1000
    )
    blocked_total = 0
    executed_total = 0
    t = 0
    while not expl.ptree.is_complete():
        moves = algorithm.select_moves(expl, everyone)
        blocked = adversary.block(t, expl, moves)
        surviving = {i: m for i, m in moves.items() if i not in blocked}
        for i in blocked:
            if i in moves:
                algorithm.handle_blocked(expl, i, moves[i])
        blocked_total += sum(
            1 for i in blocked if i in moves and moves[i][0] != "stay"
        )
        executed_total += sum(1 for m in surviving.values() if m[0] != "stay")
        before = list(expl.positions)
        events = expl.apply(surviving, everyone)
        algorithm.observe(expl, events)
        t += 1
        if expl.positions == before and not blocked and t > adversary.horizon:
            break  # genuinely stuck without interference: incomplete tree?
        if t > cap:
            raise RuntimeError(f"reactive run exceeded {cap} wall rounds")
    root = tree.root
    result = ExplorationResult(
        rounds=expl.round,
        wall_rounds=t,
        complete=expl.ptree.is_complete(),
        all_home=all(p == root for p in expl.positions),
        metrics=expl.metrics,
        positions=list(expl.positions),
        ptree=expl.ptree,
    )
    return ReactiveRunResult(
        result=result,
        blocked_moves=blocked_total,
        executed_moves=executed_total,
    )
