"""Reactive break-down adversaries (the paper's Remark 8).

Remark 8 suggests a stronger adversarial setting: the adversary *observes
the moves the robots have selected* before choosing which robots to
block.  This module implements that model: each round, the algorithm
commits its moves, the reactive adversary inspects them (and the whole
exploration state) and strikes out a subset, and only the surviving moves
execute.  The paper leaves the analysis of this model open; the harness
lets us probe it empirically (see ``test_bench_reactive.py``).

Blocking is *sound* with respect to the engine's rules: dropping a subset
of a legal synchronous move set leaves a legal move set (dangling-edge
selections are distinct per round, so removing some cannot create a
conflict).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from .engine import (
    AlgorithmPolicy,
    Exploration,
    ExplorationAlgorithm,
    ExplorationResult,
    Move,
    TreeRoundState,
)
from .runloop import (
    Interference,
    InterferenceCounter,
    RoundEngine,
    RoundObserver,
    tree_round_cap,
)


class ReactiveAdversary(ABC):
    """Chooses which robots to block *after* seeing their selected moves."""

    #: Rounds after which the adversary stops interfering.
    horizon: int = 0

    @abstractmethod
    def block(
        self, round_: int, expl: Exploration, moves: Dict[int, Move]
    ) -> Set[int]:
        """The robots whose moves are cancelled this round."""


class BlockExplorers(ReactiveAdversary):
    """The nastiest simple policy: block (a fraction of) the robots that
    are about to traverse a dangling edge, delaying every discovery."""

    def __init__(self, budget_per_round: int, horizon: int):
        if budget_per_round < 0:
            raise ValueError("budget_per_round must be >= 0")
        self.budget_per_round = budget_per_round
        self.horizon = horizon

    def block(self, round_, expl, moves):
        if round_ >= self.horizon:
            return set()
        explorers = sorted(i for i, m in moves.items() if m[0] == "explore")
        return set(explorers[: self.budget_per_round])


class BlockDeepest(ReactiveAdversary):
    """Blocks the deepest moving robots — starving the depth-first part."""

    def __init__(self, budget_per_round: int, horizon: int):
        self.budget_per_round = budget_per_round
        self.horizon = horizon

    def block(self, round_, expl, moves):
        if round_ >= self.horizon:
            return set()
        movers = [
            (expl.ptree.node_depth(expl.positions[i]), i)
            for i, m in moves.items()
            if m[0] != "stay"
        ]
        movers.sort(reverse=True)
        return {i for _, i in movers[: self.budget_per_round]}


class RandomReactive(ReactiveAdversary):
    """Blocks each selected mover independently with probability ``p``."""

    def __init__(self, p: float, horizon: int, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p
        self.horizon = horizon
        self._rng = random.Random(seed)

    def block(self, round_, expl, moves):
        if round_ >= self.horizon:
            return set()
        return {
            i
            for i, m in moves.items()
            if m[0] != "stay" and self._rng.random() < self.p
        }


class ReactiveInterference(Interference):
    """Wraps a :class:`ReactiveAdversary` as the runloop's
    post-commitment strike (Remark 8): the adversary inspects the
    selected moves before choosing whom to block."""

    def __init__(self, adversary: ReactiveAdversary):
        self.adversary = adversary
        self.horizon = adversary.horizon

    def filter(self, t: int, state: TreeRoundState, moves: Dict[int, Move]) -> Set[int]:
        """The robots whose selected moves are struck out this round."""
        return self.adversary.block(t, state.expl, moves)


@dataclass
class ReactiveRunResult:
    """Outcome of a reactive-adversary run."""

    result: ExplorationResult
    blocked_moves: int
    executed_moves: int

    @property
    def interference(self) -> float:
        """Fraction of selected moves the adversary cancelled."""
        total = self.blocked_moves + self.executed_moves
        return self.blocked_moves / total if total else 0.0


def run_reactive(
    tree,
    algorithm: ExplorationAlgorithm,
    k: int,
    adversary: ReactiveAdversary,
    max_wall_rounds: Optional[int] = None,
    observers: Sequence[RoundObserver] = (),
) -> ReactiveRunResult:
    """Drive an exploration where the adversary strikes selected moves.

    Stops as soon as the tree is completely explored (as in Section 4.2,
    robots need not return home against an adversary).  The loop is the
    shared :class:`~repro.sim.runloop.RoundEngine` with the adversary
    plugged in as a post-commitment :class:`ReactiveInterference`; the
    blocked/executed accounting is the stock
    :class:`~repro.sim.runloop.InterferenceCounter` observer.
    ``observers`` are extra per-round engine hooks (timing, tracing).
    """
    expl = Exploration(tree, k)
    cap = (
        max_wall_rounds
        if max_wall_rounds is not None
        else tree_round_cap(tree.n, tree.depth, slack=2 * adversary.horizon + 1000)
    )
    counter = InterferenceCounter()
    engine = RoundEngine(
        state=TreeRoundState(expl),
        policy=AlgorithmPolicy(algorithm),
        interference=ReactiveInterference(adversary),
        observers=[counter, *observers],
        stop_when_complete=True,
        wall_cap=cap,
        # The adversary may legitimately stall every mover during its
        # horizon; only afterwards does quiescence mean "stuck".
        quiescence_grace=adversary.horizon,
        bill_quiescent_round=True,
        cap_message=lambda billed, wall: (
            f"reactive run exceeded {cap} wall rounds"
        ),
    )
    outcome = engine.run()
    root = tree.root
    result = ExplorationResult(
        rounds=expl.round,
        wall_rounds=outcome.wall_rounds,
        complete=expl.ptree.is_complete(),
        all_home=all(p == root for p in expl.positions),
        metrics=expl.metrics,
        positions=list(expl.positions),
        ptree=expl.ptree,
    )
    return ReactiveRunResult(
        result=result,
        blocked_moves=counter.blocked_moves,
        executed_moves=counter.executed_moves,
    )
