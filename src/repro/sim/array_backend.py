"""The ``array`` engine backend: flat-array state, event-driven rounds.

The reference loop spends its time in dict lookups and per-object
bookkeeping: every round builds a move dict, validates it, mutates the
:class:`~repro.trees.partial.PartialTree` and allocates metrics records.
This backend replays the *same* algorithm — BFDN with the least-loaded
re-anchor policy, sequential robot order, Claim 2's distinct-port rule —
against the tree's contiguous :class:`~repro.trees.tree.TreeArrays` view
(parent/depth/CSR-children tables) with all per-robot and per-node state
held in parallel flat arrays:

* ``next_child[v]`` — BFDN consumes the dangling ports of a node in
  strictly increasing order with no gaps, so a partial tree reduces to
  one claim pointer per node (the dangling ports of ``v`` are exactly
  the child slots ``next_child[v] ..``);
* ``open_dang[v]`` / ``open_count[d]`` — pre-round dangling counts and
  an open-node histogram by depth.  New open nodes are always children
  of open nodes, so the working depth is monotone and a single advancing
  pointer replaces the reference's lazy depth heap;
* per-depth ``(load, node)`` heaps — the exact least-loaded argmin the
  reference policy computes, stale entries and all;
* ``rem[i]`` / ``rpath[i]`` — each robot's breadth-first descent is a
  shared cached root→anchor path plus a countdown, so a round in which
  every robot is mid-descent collapses into one bulk leap.

Claims mutate ``next_child`` immediately (the sequential port hand-out
of Algorithm 1 line 20) but open-ness and the heaps are only folded in
*after* the robot loop, because robots re-anchoring later in the same
round must see the pre-round open state — exactly the select/apply split
of the reference engine.

Instead of mutating a ``PartialTree`` per reveal, the backend keeps a
flat discovery log and rebuilds the partial tree *lazily* on first
access after the run; metrics are likewise accumulated as flat counters
and decoded into :class:`~repro.sim.metrics.ReanchorRecord` objects on
demand.  numpy, when installed (the ``repro[fast]`` extra), accelerates
the batched aggregation paths (per-depth histograms, array mirrors in
``TreeArrays``); without it the backend runs its pure-python array path
and logs a one-time notice — it never falls back to the reference loop
just because numpy is missing.

Parity contract (pinned by ``tests/test_runloop_regression.py`` and
``tests/test_backend_array.py``): final positions, billed/wall rounds,
the complete metrics object (including the ordered re-anchor log), the
rebuilt partial tree's queryable state, and the algorithm's public
``anchors``/``loads`` are indistinguishable from a reference run.
Private incremental caches (the policy's heaps, BFDN's excursion
counters) are reset, not replayed.
"""

from __future__ import annotations

import logging
from collections import Counter
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Any, Dict, List, Optional, Set, Tuple

from ..trees.partial import PartialTree
from .backend import EngineBackend, note_fallback
from .metrics import ExplorationMetrics, ReanchorRecord

try:  # numpy is the optional ``repro[fast]`` extra
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the masked-numpy test
    _np = None

logger = logging.getLogger(__name__)

_numpy_noticed = False


def _note_numpy_fallback() -> None:
    """Log the pure-python degradation once per process."""
    global _numpy_noticed
    if not _numpy_noticed:
        _numpy_noticed = True
        logger.warning(
            "backend=array: numpy not installed; running the pure-python "
            "array path (install repro[fast] for vectorized aggregations)"
        )


# ---------------------------------------------------------------------
# Lazy result objects
# ---------------------------------------------------------------------

class ArrayMetrics(ExplorationMetrics):
    """:class:`~repro.sim.metrics.ExplorationMetrics` with a lazily
    decoded re-anchor log.

    The hot loop appends flat ``(round, robot, anchor, depth)`` tuples;
    ``ReanchorRecord`` objects (thousands per large run) are only
    materialised if somebody reads ``.reanchors``.  Field-wise the
    object is indistinguishable from the reference metrics; only
    ``metrics == metrics`` across backends is out of scope (dataclass
    equality is class-gated).
    """

    def __init__(
        self,
        rounds: int,
        idle_rounds: int,
        total_moves: int,
        moves_per_robot: Counter,
        idle_per_robot: Counter,
        reveals: int,
        reanchor_log: List[Tuple[int, int, int, int]],
    ):
        self.rounds = rounds
        self.idle_rounds = idle_rounds
        self.total_moves = total_moves
        self.moves_per_robot = moves_per_robot
        self.idle_per_robot = idle_per_robot
        self.reveals = reveals
        self._reanchor_log = reanchor_log
        self._materialized: Optional[list] = None

    @property
    def reanchors(self) -> list:
        recs = self._materialized
        if recs is None:
            recs = [ReanchorRecord(*t) for t in self._reanchor_log]
            self._materialized = recs
        return recs

    @reanchors.setter
    def reanchors(self, value: list) -> None:
        self._materialized = list(value)

    def reanchors_per_depth(self) -> Dict[int, int]:
        """Per-depth ``Reanchor`` counts without materialising records."""
        if self._materialized is not None:
            counts = Counter(rec.depth for rec in self._materialized)
            return dict(counts)
        depths = [t[3] for t in self._reanchor_log]
        if _np is not None and depths:
            bins = _np.bincount(_np.asarray(depths))
            return {d: int(c) for d, c in enumerate(bins) if c}
        return dict(Counter(depths))

    def log_reanchor(self, round_: int, robot: int, anchor: int, depth: int) -> None:
        """Record one anchor assignment (post-run callers only)."""
        self.reanchors.append(ReanchorRecord(round_, robot, anchor, depth))

    def summary(self) -> Dict[str, float]:
        """A flat summary convenient for tables."""
        return {
            "rounds": self.rounds,
            "idle_rounds": self.idle_rounds,
            "total_moves": self.total_moves,
            "reveals": self.reveals,
            "reanchor_calls": (
                len(self._reanchor_log)
                if self._materialized is None
                else len(self._materialized)
            ),
        }


class LazyPartialTree(PartialTree):
    """A :class:`~repro.trees.partial.PartialTree` rebuilt on demand.

    The array backend never mutates a partial tree during the run; it
    keeps the flat discovery log instead.  Completion queries only need
    the eagerly set scalars (``num_dangling``, ``num_explored``), so the
    common result-row path never pays for the rebuild; the first access
    to any structural attribute replays the log into a full, behaviorally
    identical ``PartialTree`` state.
    """

    def __init__(self, build, root: int, num_dangling: int, num_explored: int):
        # Deliberately does NOT call PartialTree.__init__: the internal
        # tables are filled by ``build`` on first structural access.
        self.__dict__["_lazy_build"] = build
        self.root = root
        self.num_dangling = num_dangling
        self.num_explored = num_explored

    def __getattr__(self, name: str):
        build = self.__dict__.pop("_lazy_build", None)
        if build is None:
            raise AttributeError(name)
        build(self)
        return getattr(self, name)


# ---------------------------------------------------------------------
# Envelope
# ---------------------------------------------------------------------

def _decline_reason(engine) -> Optional[str]:
    """Why this engine configuration must run on the reference loop
    (``None`` when the array fast path applies)."""
    from ..core.bfdn import BFDN
    from ..core.reanchor import LeastLoadedPolicy
    from ..trees.tree import Tree
    from .adversary import NoBreakdowns
    from .engine import AlgorithmPolicy, BreakdownInterference, Exploration, TreeRoundState
    from .runloop import NoInterference, RoundObserver

    scheduler = getattr(engine, "scheduler", None)
    if scheduler is not None and getattr(scheduler, "name", "") != "sync":
        # The flat-array loop is a synchronous-clock accelerator; async
        # schedules run on the reference event loop.
        return f"scheduler {getattr(scheduler, 'name', type(scheduler).__name__)!r}"
    state = engine.state
    if type(state) is not TreeRoundState:
        return f"state {type(state).__name__} is not the tree model"
    policy = engine.policy
    if type(policy) is not AlgorithmPolicy:
        return f"policy {type(policy).__name__} is not an algorithm adapter"
    algorithm = policy.algorithm
    if type(algorithm) is not BFDN:
        return f"algorithm {getattr(algorithm, 'name', type(algorithm).__name__)!r}"
    if algorithm.record_excursions:
        return "record_excursions=True needs per-move bookkeeping"
    if type(algorithm.policy) is not LeastLoadedPolicy:
        return f"reanchor policy {algorithm.policy.name!r}"
    interference = engine.interference
    if type(interference) is BreakdownInterference:
        if type(interference.adversary) is not NoBreakdowns:
            return f"break-down adversary {type(interference.adversary).__name__}"
    elif type(interference) is not NoInterference:
        return f"interference {type(interference).__name__}"
    for obs in engine.observers:
        if not getattr(obs, "supports_batch", False):
            return f"per-round observer {type(obs).__name__}"
        if type(obs).should_stop is not RoundObserver.should_stop:
            return f"early-stop observer {type(obs).__name__}"
    if engine.billed_stop is not None:
        return "billed_stop budget"
    if engine.quiescence_grace:
        return "quiescence_grace"
    if engine.bill_quiescent_round:
        return "bill_quiescent_round"
    expl = state.expl
    if type(expl) is not Exploration:
        return f"exploration state {type(expl).__name__}"
    tree = expl.tree
    if type(tree) is not Tree:
        return f"tree {type(tree).__name__} (adaptive/lazy substrates stay on reference)"
    if expl.round != 0 or expl.ptree.num_explored != 1:
        return "mid-run exploration state"
    root = tree.root
    if any(p != root for p in expl.positions):
        return "robots not at the root"
    return None


# ---------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------

class ArrayBackend(EngineBackend):
    """Flat-array BFDN executor (see the module docstring)."""

    name = "array"

    _instance: Optional["ArrayBackend"] = None

    @classmethod
    def instance(cls) -> "ArrayBackend":
        inst = cls._instance
        if inst is None:
            inst = cls._instance = cls()
        return inst

    def execute(self, engine) -> Optional[Any]:
        """Run the engine on the fast path, or decline with ``None``."""
        reason = _decline_reason(engine)
        if reason is not None:
            note_fallback(reason)
            return None
        if _np is None:
            _note_numpy_fallback()
        return _run(engine)


def _run(engine):
    """Drive one in-envelope engine to termination on flat arrays."""
    from .runloop import (
        STOP_COMPLETE,
        STOP_QUIESCENT,
        RoundCapExceeded,
        RunOutcome,
    )

    state = engine.state
    expl = state.expl
    tree = expl.tree
    k = expl.k
    root = tree.root
    arrays = tree.as_arrays()
    par = arrays.parent
    depth_arr = arrays.depth
    nch = arrays.num_children
    cptr = arrays.child_ptr
    clist = arrays.child_list
    n = arrays.n

    # Attach for side-effect parity: resets the algorithm's and the
    # re-anchor policy's incremental state exactly like the reference.
    engine.policy.attach(state)
    observers = list(engine.observers)
    for obs in observers:
        obs.on_attach(state)
    started = perf_counter()

    big = 1 << 62
    billed_cap = engine.billed_cap if engine.billed_cap is not None else big
    wall_cap = engine.wall_cap if engine.wall_cap is not None else big
    cap = billed_cap if billed_cap < wall_cap else wall_cap
    stop_complete = engine.stop_when_complete

    # ---- node state -------------------------------------------------
    root_deg = nch[root]
    # Fused claim pointer: ``next_ptr[v]`` indexes straight into
    # ``child_list``; the v-th node's unclaimed slots are
    # ``next_ptr[v] .. cend[v]``.  One indexed read replaces the
    # (counter, base, bound) triple on the hottest branch.
    next_ptr = cptr[:n]
    cend = cptr[1:]
    open_dang = [0] * n
    open_dang[root] = root_deg
    total_dangling = root_deg
    open_count = [0] * (tree.depth + 1)
    if root_deg:
        open_count[0] = 1
    md = 0  # working depth: monotone non-decreasing
    heaps: Dict[int, List[Tuple[int, int]]] = {0: [(k, root)]} if root_deg else {}
    pending: List[List[int]] = [[] for _ in range(tree.depth + 2)]
    load = [0] * n
    load[root] = k

    # ---- robot state ------------------------------------------------
    # Robots descending a re-anchor path are pure spectators until they
    # arrive: their intermediate positions are unobservable (decisions
    # depend only on the partial tree and the load table, which walkers
    # never touch mid-walk).  So the round loop iterates only over
    # ``active`` robots and schedules each walker's first decision round
    # in ``arrivals``; when every robot is walking, the loop leaps
    # straight to the next arrival.
    pos = [root] * k
    anchor = [root] * k
    rpath: List[Optional[List[int]]] = [None] * k
    due = [0] * k
    active = list(range(k))
    departed: List[int] = []
    arrivals: Dict[int, List[int]] = {}
    walkers = 0

    path_cache: Dict[int, List[int]] = {}
    path_depth = -1

    # ---- accounting -------------------------------------------------
    billed = 0
    total_moves = 0
    idle_rounds = 0
    idle_pr = [0] * k
    reanchor_log: List[Tuple[int, int, int, int]] = []
    ev_child: List[int] = []
    stay_list: List[int] = []

    log_append = reanchor_log.append
    ev_append = ev_child.append
    stay_append = stay_list.append
    robots = range(k)
    reason = None

    while True:
        if stop_complete and not total_dangling:
            reason = STOP_COMPLETE
            break
        if walkers:
            bucket = arrivals.pop(billed, None)
            if bucket is not None:
                walkers -= len(bucket)
                for i in bucket:
                    pos[i] = rpath[i][-1]
                # Buckets may interleave launch rounds, so ids can be
                # out of order; decision order is strict robot-id order.
                active.extend(bucket)
                active.sort()
            elif not active:
                # Every robot is mid-descent: the next rounds are fully
                # determined, leap straight to the earliest arrival.
                nxt = min(arrivals)
                if nxt > cap:
                    _raise_cap(engine, cap + 1, RoundCapExceeded)
                total_moves += k * (nxt - billed)
                billed = nxt
                continue
        ev_mark = len(ev_child)
        stays = 0
        for i in active:
            u = pos[i]
            if u == root:
                # -- Reanchor (Algorithm 1 lines 25-30) ---------------
                if total_dangling:
                    while not open_count[md]:
                        md += 1
                    heap = heaps.get(md)
                    if heap is None:
                        # First selection at this depth: every depth-md
                        # node was already discovered (its parent had to
                        # be open, pinning the working depth below md),
                        # and none has carried load yet — one filtered
                        # heapify replaces per-discovery pushes.
                        heap = [(0, c) for c in pending[md] if open_dang[c]]
                        heapify(heap)
                        heaps[md] = heap
                    while True:
                        entry = heap[0]
                        node = entry[1]
                        if open_dang[node] and load[node] == entry[0]:
                            new = node
                            break
                        heappop(heap)
                else:
                    new = root
                old = anchor[i]
                if new != old:
                    lo = load[old] - 1
                    load[old] = lo
                    if open_dang[old]:
                        heappush(heaps[depth_arr[old]], (lo, old))
                    ln = load[new] + 1
                    load[new] = ln
                    if open_dang[new]:
                        heappush(heaps[depth_arr[new]], (ln, new))
                    anchor[i] = new
                if total_dangling:
                    log_append((billed, i, new, depth_arr[new]))
                    if new != root:
                        # Breadth-first descent: shared cached path,
                        # flushed when the working depth advances.
                        if md != path_depth:
                            path_cache.clear()
                            path_depth = md
                        p = path_cache.get(new)
                        if p is None:
                            p = []
                            v = new
                            while v != root:
                                p.append(v)
                                v = par[v]
                            p.reverse()
                            path_cache[new] = p
                        if len(p) > 1:
                            # Multi-round descent: leave the active set,
                            # rejoin at the first post-arrival round.
                            rpath[i] = p
                            a = billed + len(p)
                            due[i] = a
                            b = arrivals.get(a)
                            if b is None:
                                arrivals[a] = [i]
                            else:
                                b.append(i)
                            walkers += 1
                            departed.append(i)
                        else:
                            pos[i] = p[0]
                        continue
                # anchor == root: fall through to the depth-next step
            # -- depth-next: claim the next dangling port, else up ----
            j = next_ptr[u]
            if j < cend[u]:
                next_ptr[u] = j + 1
                c = clist[j]
                pos[i] = c
                ev_append(c)
            elif u != root:
                pos[i] = par[u]
            else:
                stays += 1
                stay_append(i)

        if departed:
            for i in departed:
                active.remove(i)
            del departed[:]
        moved = k - stays
        if not moved:
            # Algorithm 1's unbilled final all-stay round.
            reason = STOP_QUIESCENT
            break
        billed += 1
        total_moves += moved
        if stays:
            idle_rounds += 1
            for i in stay_list:
                idle_pr[i] += 1
            del stay_list[:]

        # -- fold this round's reveals into the open structures -------
        m = len(ev_child)
        if m > ev_mark:
            for j in range(ev_mark, m):
                c = ev_child[j]
                u = par[c]
                od = open_dang[u] - 1
                open_dang[u] = od
                if not od:
                    open_count[depth_arr[u]] -= 1
                ncc = nch[c]
                if ncc:
                    open_dang[c] = ncc
                    dc = depth_arr[c]
                    open_count[dc] += 1
                    # Discovery depth always exceeds the working depth,
                    # so heaps[dc] cannot exist yet: stage the node in
                    # the depth's pending list instead of pushing.
                    pending[dc].append(c)
                total_dangling += ncc - 1

        if billed > cap:
            _raise_cap(engine, billed, RoundCapExceeded)

    elapsed = perf_counter() - started

    # Robots still mid-walk at the stop (possible under
    # ``stop_when_complete``): place them at the step they had actually
    # reached and note the steps left on their stack.
    rem = [0] * k
    if walkers:
        for bucket in arrivals.values():
            for i in bucket:
                left = due[i] - billed
                p = rpath[i]
                if left > 0:
                    rem[i] = left
                    pos[i] = p[len(p) - 1 - left]
                else:
                    pos[i] = p[-1]

    # ---- writeback: indistinguishable final state -------------------
    reveals = len(ev_child)
    moves_pr = Counter()
    idle_c = Counter()
    for i in robots:
        idles = idle_pr[i]
        if idles:
            idle_c[i] = idles
        moves = billed - idles
        if moves:
            moves_pr[i] = moves
    expl.round = billed
    expl.positions = pos
    expl.metrics = ArrayMetrics(
        rounds=billed,
        idle_rounds=idle_rounds,
        total_moves=total_moves,
        moves_per_robot=moves_pr,
        idle_per_robot=idle_c,
        reveals=reveals,
        reanchor_log=reanchor_log,
    )
    expl.ptree = LazyPartialTree(
        _ptree_builder(arrays, root_deg, ev_child, next_ptr, total_dangling),
        root,
        total_dangling,
        1 + reveals,
    )
    algorithm = engine.policy.algorithm
    algorithm._anchors = list(anchor)
    loads: Dict[int, int] = {}
    for a in anchor:
        loads[a] = loads.get(a, 0) + 1
    algorithm._loads = loads
    stacks: List[List[int]] = []
    for i in robots:
        r = rem[i]
        if r:
            p = rpath[i]
            stacks.append(p[len(p) - r:][::-1])
        else:
            stacks.append([])
    algorithm._stacks = stacks
    algorithm._moves_in_excursion = [0] * k
    algorithm._explores_in_excursion = [0] * k
    algorithm._excursion_start = [billed] * k

    outcome = RunOutcome(
        wall_rounds=billed,  # every executed round moved somebody
        billed_rounds=billed,
        stop_reason=reason,
    )
    summary = {
        "rounds": billed,
        "billed": billed,
        "reveals": reveals,
        "backend": "array",
        "phases": {"select": 0.0, "apply": elapsed, "observe": 0.0},
    }
    for obs in observers:
        obs.on_batch(state, summary)
    for obs in observers:
        obs.on_stop(state, outcome)
    return outcome


def _raise_cap(engine, billed: int, exc_type) -> None:
    """Raise the cap error with the engine's message (wall == billed here)."""
    message = (
        engine.cap_message(billed, billed)
        if engine.cap_message is not None
        else f"run exceeded its round cap (billed={billed}, wall={billed})"
    )
    raise exc_type(message)


# ---------------------------------------------------------------------
# Partial-tree reconstruction
# ---------------------------------------------------------------------

def _ptree_builder(arrays, root_deg, ev_child, next_ptr, total_dangling):
    """A closure that replays the discovery log into ``PartialTree`` state.

    Discovery order (``ev_child``) equals the reference's reveal order —
    robot-id claim order within each round — so ``explored_children``
    lists come out identical.
    """

    def build(pt) -> None:
        par = arrays.parent
        depth_arr = arrays.depth
        nch = arrays.num_children
        root = 0
        depth_d = {root: 0}
        parent_d = {root: -1}
        degree_d = {root: root_deg}
        children_d: Dict[int, List[int]] = {root: []}
        port_child: Dict[Tuple[int, int], int] = {}
        child_port: Dict[int, int] = {}
        revealed = [0] * arrays.n
        for c in ev_child:
            u = par[c]
            children_d[u].append(c)
            # Root ports are 0-based, inner ports 1-based (port 0 is up).
            port = revealed[u] + (0 if u == root else 1)
            revealed[u] += 1
            port_child[(u, port)] = c
            child_port[c] = port
            depth_d[c] = depth_arr[c]
            parent_d[c] = u
            degree_d[c] = nch[c] + 1
            children_d[c] = []
        cptr = arrays.child_ptr
        dangling_d: Dict[int, Set[int]] = {}
        for v in depth_d:
            off = 0 if v == root else 1
            claimed = next_ptr[v] - cptr[v]
            dangling_d[v] = set(range(claimed + off, nch[v] + off))
        open_by_depth: Dict[int, Set[int]] = {}
        for v, ports in dangling_d.items():
            if ports:
                open_by_depth.setdefault(depth_d[v], set()).add(v)
        if total_dangling:
            unfinished = {}
            for v in reversed(list(depth_d)):
                count = len(dangling_d[v])
                for c in children_d[v]:
                    if unfinished[c] > 0:
                        count += 1
                unfinished[v] = count
        else:
            unfinished = dict.fromkeys(depth_d, 0)
        d = pt.__dict__
        d["root"] = root
        d["_depth"] = depth_d
        d["_parent"] = parent_d
        d["_dangling"] = dangling_d
        d["_degree"] = degree_d
        d["_port_child"] = port_child
        d["_child_port"] = child_port
        d["_children"] = children_d
        d["num_dangling"] = total_dangling
        d["num_explored"] = len(depth_d)
        d["_open_by_depth"] = open_by_depth
        d["_depth_heap"] = sorted(open_by_depth)
        d["_unfinished"] = unfinished

    return build


__all__ = ["ArrayBackend", "ArrayMetrics", "LazyPartialTree"]
