"""Per-round time series of an exploration run.

The paper's analysis is organised around quantities that evolve round by
round — the *working depth* (minimum depth of an open node, which is
non-decreasing and drives ``Reanchor``), the number of explored nodes,
the robots' depth profile.  :class:`TimeSeriesRecorder` wraps any
algorithm and samples these each round, enabling the working-depth
progression plots/checks and regression tests on the exploration dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..trees.partial import RevealEvent
from .engine import Exploration, ExplorationAlgorithm, Move, TreeRoundState
from .runloop import RoundObserver, RoundRecord


@dataclass
class RoundSample:
    """One row of the time series (sampled after the round's moves)."""

    round: int
    explored: int
    dangling: int
    working_depth: Optional[int]
    robots_at_root: int
    max_robot_depth: int
    mean_robot_depth: float


@dataclass
class TimeSeries:
    """The full per-round record of one run."""

    samples: List[RoundSample] = field(default_factory=list)

    def column(self, name: str) -> List:
        """One column across all samples."""
        return [getattr(s, name) for s in self.samples]

    def working_depth_is_monotone(self) -> bool:
        """The paper's key structural fact: the minimum open depth never
        decreases during an execution."""
        last = -1
        for s in self.samples:
            if s.working_depth is None:
                continue
            if s.working_depth < last:
                return False
            last = s.working_depth
        return True

    def exploration_rate(self) -> float:
        """Average nodes revealed per round."""
        if not self.samples:
            return 0.0
        first, final = self.samples[0], self.samples[-1]
        rounds = max(final.round - first.round, 1)
        return (final.explored - first.explored) / rounds


class TimeSeriesRecorder(ExplorationAlgorithm):
    """Wraps an algorithm and samples the exploration state each round."""

    def __init__(self, inner: ExplorationAlgorithm):
        self.inner = inner
        self.name = f"sampled({inner.name})"
        self.series = TimeSeries()

    def attach(self, expl: Exploration) -> None:
        self.series = TimeSeries()
        self.inner.attach(expl)
        self._sample(expl)

    def select_moves(self, expl: Exploration, movable: Set[int]) -> Dict[int, Move]:
        return self.inner.select_moves(expl, movable)

    def observe(self, expl: Exploration, events: Sequence[RevealEvent]) -> None:
        self.inner.observe(expl, events)
        self._sample(expl)

    def _sample(self, expl: Exploration) -> None:
        self.series.samples.append(sample_round(expl))


def sample_round(expl: Exploration) -> RoundSample:
    """Snapshot the exploration state as one :class:`RoundSample`."""
    ptree = expl.ptree
    depths = [ptree.node_depth(p) for p in expl.positions]
    return RoundSample(
        round=expl.round,
        explored=ptree.num_explored,
        dangling=ptree.num_dangling,
        working_depth=ptree.min_open_depth,
        robots_at_root=sum(1 for p in expl.positions if p == expl.tree.root),
        max_robot_depth=max(depths),
        mean_robot_depth=sum(depths) / len(depths),
    )


class TimeSeriesObserver(RoundObserver):
    """Round-engine observer sampling the exploration state each round.

    The observer equivalent of :class:`TimeSeriesRecorder`: instead of
    wrapping the algorithm it hooks the engine, so it composes with any
    algorithm (and any other observer) without changing the algorithm's
    ``name``.  Samples once on attach and once after every round.
    """

    def __init__(self) -> None:
        self.series = TimeSeries()

    def on_attach(self, state: TreeRoundState) -> None:
        """Reset the series and take the round-0 sample."""
        self.series = TimeSeries()
        self.series.samples.append(sample_round(state.expl))

    def on_round(self, state: TreeRoundState, record: RoundRecord) -> None:
        """Sample the post-round state."""
        self.series.samples.append(sample_round(state.expl))
