"""SVG rendering (no external dependencies).

Produces shareable vector graphics for the two things people want to see:

* :func:`tree_svg` — a snapshot of an exploration: the explored tree laid
  out top-down, robots as filled circles, dangling edges as stubs;
* :func:`region_map_svg` — the Figure 1 region chart with one colored
  cell per grid point.

The layout is a classic tidy-tree pass (leaves evenly spaced, parents
centered over their children) on the *explored* part of the tree.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence, Tuple

from ..bounds.regions import ALGORITHMS, RegionMap
from ..trees.partial import PartialTree
from ..trees.tree import Tree

#: Fill colors per algorithm for the region chart.
REGION_COLORS: Dict[str, str] = {
    "CTE": "#4e79a7",
    "Yo*": "#f28e2b",
    "BFDN": "#59a14f",
    "BFDN_ell": "#b07aa1",
    "": "#e8e8e8",
}

_ROBOT_COLORS = (
    "#e15759", "#4e79a7", "#f28e2b", "#59a14f", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7",
)


def _tidy_layout(
    children: Dict[int, Sequence[int]], root: int
) -> Dict[int, Tuple[float, int]]:
    """Leaf-evenly-spaced tidy layout: returns ``node -> (x, depth)``."""
    positions: Dict[int, Tuple[float, int]] = {}
    next_leaf_x = [0.0]

    def place(node: int, depth: int) -> float:
        kids = children.get(node, ())
        if not kids:
            x = next_leaf_x[0]
            next_leaf_x[0] += 1.0
        else:
            xs = [place(c, depth + 1) for c in kids]
            x = sum(xs) / len(xs)
        positions[node] = (x, depth)
        return x

    place(root, 0)
    return positions


def tree_svg(
    ptree: PartialTree,
    positions: Sequence[int],
    cell: int = 36,
    title: str = "",
) -> str:
    """Render the explored tree with robots and dangling-edge stubs."""
    children = {
        v: list(ptree.explored_children(v)) for v in ptree.explored_nodes()
    }
    layout = _tidy_layout(children, ptree.root)
    max_x = max(x for x, _ in layout.values())
    max_d = max(d for _, d in layout.values())
    width = int((max_x + 2) * cell)
    height = int((max_d + 2) * cell) + (24 if title else 0)
    top = 24 if title else 0

    def px(node: int) -> Tuple[float, float]:
        x, d = layout[node]
        return (x + 1) * cell, top + (d + 1) * cell

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="8" y="16" font-family="monospace" font-size="13">'
            f"{html.escape(title)}</text>"
        )
    # Edges.
    for v in layout:
        for c in children.get(v, ()):
            x1, y1 = px(v)
            x2, y2 = px(c)
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                f'y2="{y2:.1f}" stroke="#888" stroke-width="1.5"/>'
            )
    # Dangling stubs.
    for v in layout:
        stubs = len(ptree.dangling_ports(v))
        if stubs:
            x, y = px(v)
            for idx in range(stubs):
                dx = (idx - (stubs - 1) / 2) * 6
                parts.append(
                    f'<line x1="{x:.1f}" y1="{y:.1f}" x2="{x + dx:.1f}" '
                    f'y2="{y + cell * 0.6:.1f}" stroke="#cc3333" '
                    f'stroke-width="1" stroke-dasharray="3,2"/>'
                )
    # Nodes.
    for v in layout:
        x, y = px(v)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="#444"/>'
        )
    # Robots (offset so co-located robots stay visible).
    robots_at: Dict[int, List[int]] = {}
    for i, p in enumerate(positions):
        robots_at.setdefault(p, []).append(i)
    for node, robots in robots_at.items():
        if node not in layout:
            continue
        x, y = px(node)
        for slot, i in enumerate(robots):
            color = _ROBOT_COLORS[i % len(_ROBOT_COLORS)]
            ox = (slot - (len(robots) - 1) / 2) * 10
            parts.append(
                f'<circle cx="{x + ox:.1f}" cy="{y - 10:.1f}" r="5" '
                f'fill="{color}" stroke="black" stroke-width="0.7">'
                f"<title>robot {i}</title></circle>"
            )
    parts.append("</svg>")
    return "\n".join(parts)


def exploration_svg(tree: Tree, positions: Sequence[int], **kwargs) -> str:
    """Convenience: render a *fully explored* tree with robot positions."""
    ptree = PartialTree(tree.root, tree.degree(tree.root))
    stack = [tree.root]
    while stack:
        u = stack.pop()
        for port in sorted(ptree.dangling_ports(u)):
            child = tree.port_to(u, port)
            ptree.reveal(u, port, child, tree.degree(child))
            stack.append(child)
    return tree_svg(ptree, positions, **kwargs)


def region_map_svg(region_map: RegionMap, cell: int = 9) -> str:
    """Figure 1 as an SVG heat map (one colored square per grid cell)."""
    rows = len(region_map.log2_d)
    cols = len(region_map.log2_n)
    margin_left, margin_bottom, margin_top = 56, 36, 28
    width = cols * cell + margin_left + 10
    height = rows * cell + margin_top + margin_bottom
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="8" y="18" font-family="monospace" font-size="13">'
        f"Figure 1 regions, k={region_map.k}</text>",
    ]
    for row_idx in range(rows):
        for col_idx in range(cols):
            winner = region_map.winners[row_idx][col_idx]
            color = REGION_COLORS.get(winner, "#ffffff")
            x = margin_left + col_idx * cell
            y = margin_top + (rows - 1 - row_idx) * cell
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'fill="{color}"/>'
            )
    # Axes labels.
    parts.append(
        f'<text x="{margin_left}" y="{height - 12}" font-family="monospace" '
        f'font-size="11">log2 n: {region_map.log2_n[0]:.0f} .. '
        f"{region_map.log2_n[-1]:.0f}</text>"
    )
    parts.append(
        f'<text x="4" y="{margin_top + 12}" font-family="monospace" '
        f'font-size="11">D^</text>'
    )
    # Legend.
    lx = margin_left
    for name in ALGORITHMS:
        parts.append(
            f'<rect x="{lx}" y="{height - 34}" width="10" height="10" '
            f'fill="{REGION_COLORS[name]}"/>'
        )
        parts.append(
            f'<text x="{lx + 13}" y="{height - 25}" font-family="monospace" '
            f'font-size="10">{html.escape(name)}</text>'
        )
        lx += 13 + 8 * len(name) + 14
    parts.append("</svg>")
    return "\n".join(parts)
