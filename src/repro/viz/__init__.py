"""SVG visualisation (no external dependencies)."""

from .svg import REGION_COLORS, exploration_svg, region_map_svg, tree_svg

__all__ = ["tree_svg", "exploration_svg", "region_map_svg", "REGION_COLORS"]
