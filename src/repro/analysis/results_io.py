"""Persistence for experiment results.

Benchmarks and sweeps produce dict-rows; this module writes/reads them as
CSV or JSON so results can be archived next to EXPERIMENTS.md, diffed
between runs, and re-plotted without re-simulating.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

Row = Dict[str, object]


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Serialise dict-rows to CSV text.

    Columns are the union of keys across *all* rows in first-seen order,
    so heterogeneous rows (e.g. merged sweeps where some algorithms emit
    extra metric columns) serialise instead of raising; missing cells
    are left empty.
    """
    if not rows:
        return ""
    fieldnames: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def rows_from_csv(text: str) -> List[Row]:
    """Parse CSV text back into dict-rows, restoring int/float/bool."""
    reader = csv.DictReader(io.StringIO(text))
    rows: List[Row] = []
    for raw in reader:
        rows.append({key: _coerce(value) for key, value in raw.items()})
    return rows


def _coerce(value: object) -> object:
    if not isinstance(value, str):
        return value
    if value == "True":
        return True
    if value == "False":
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def save_rows(rows: Sequence[Row], path: Union[str, Path]) -> None:
    """Write rows to ``path`` (format chosen by extension: .csv or .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(rows_to_csv(rows))
    elif path.suffix == ".json":
        path.write_text(json.dumps(list(rows), indent=1, default=str))
    else:
        raise ValueError(f"unsupported extension {path.suffix!r} (.csv or .json)")


def load_rows(path: Union[str, Path]) -> List[Row]:
    """Inverse of :func:`save_rows`."""
    path = Path(path)
    if path.suffix == ".csv":
        return rows_from_csv(path.read_text())
    if path.suffix == ".json":
        return json.loads(path.read_text())
    raise ValueError(f"unsupported extension {path.suffix!r} (.csv or .json)")
