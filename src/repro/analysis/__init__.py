"""Sweeps, overhead computation and text reports."""

from .report import render_markdown_table, render_table, summarize_by
from .scaling import PowerLawFit, doubling_ratios, fit_power_law, measure_exponent
from .experiments import EXPERIMENTS, ExperimentContext, run_experiment
from .asciiplot import line_plot, scatter_loglog
from .stats import PairedComparison, Replication, compare_paired, replicate
from .results_io import load_rows, rows_from_csv, rows_to_csv, save_rows
from .montecarlo import Distribution, SlackStudy, game_length_distribution, overhead_distribution
from .parallel import Job, JobResult, make_job, run_jobs
from .sweep import (
    AlgorithmFactory,
    ScenarioRun,
    SweepRecord,
    SweepRun,
    record_from_row,
    run_scenarios_cached,
    run_sweep,
    run_sweep_cached,
)

__all__ = [
    "run_sweep",
    "run_sweep_cached",
    "run_scenarios_cached",
    "record_from_row",
    "SweepRecord",
    "SweepRun",
    "ScenarioRun",
    "AlgorithmFactory",
    "ExperimentContext",
    "render_markdown_table",
    "render_table",
    "summarize_by",
    "fit_power_law",
    "PowerLawFit",
    "measure_exponent",
    "doubling_ratios",
    "EXPERIMENTS",
    "run_experiment",
    "line_plot",
    "scatter_loglog",
    "Replication",
    "replicate",
    "PairedComparison",
    "compare_paired",
    "save_rows",
    "load_rows",
    "rows_to_csv",
    "rows_from_csv",
    "Distribution",
    "SlackStudy",
    "overhead_distribution",
    "game_length_distribution",
    "Job",
    "JobResult",
    "make_job",
    "run_jobs",
]
