"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's claims are about;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def render_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()) -> str:
    """Render dict-rows as an aligned text table.

    Columns default to the keys of the first row, in order.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols: List[str] = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(c) for c in cols}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in cols:
            text = _fmt(row.get(c, ""))
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    body = [
        "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, cols))
        for cells in rendered
    ]
    return "\n".join([header, sep] + body)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def summarize_by(
    rows: Iterable[Dict[str, object]], group_key: str, value_key: str
) -> Dict[str, Dict[str, float]]:
    """Group rows and report min/mean/max of a numeric column."""
    groups: Dict[str, List[float]] = {}
    for row in rows:
        value = float(row[value_key])  # type: ignore[arg-type]
        groups.setdefault(str(row[group_key]), []).append(value)
    out: Dict[str, Dict[str, float]] = {}
    for key, values in groups.items():
        out[key] = {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
            "count": float(len(values)),
        }
    return out
