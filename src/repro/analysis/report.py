"""Plain-text table rendering for benchmark and report output.

The benchmark harness prints the same rows the paper's claims are about;
these helpers keep that output aligned and diff-friendly.  Numeric
columns (every non-missing value an int or float) are right-aligned so
magnitudes line up; text columns stay left-aligned.  The markdown
variant backs ``repro report``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def _is_numeric(value: object) -> bool:
    """Whether a cell value should right-align (bools read as text)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _layout(
    rows: Sequence[Dict[str, object]], columns: Sequence[str]
) -> Tuple[List[str], Dict[str, int], Dict[str, bool], List[List[str]]]:
    """Shared column layout: widths, numeric flags, formatted cells."""
    cols: List[str] = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(c) for c in cols}
    numeric = {c: True for c in cols}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in cols:
            value = row.get(c, "")
            if value != "" and not _is_numeric(value):
                numeric[c] = False
            text = _fmt(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    return cols, widths, numeric, rendered


def _align(text: str, column: str, widths: Dict[str, int],
           numeric: Dict[str, bool]) -> str:
    if numeric[column]:
        return text.rjust(widths[column])
    return text.ljust(widths[column])


def render_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()) -> str:
    """Render dict-rows as an aligned text table.

    Columns default to the keys of the first row, in order.  Columns
    whose every present value is numeric are right-aligned (header
    included); everything else left-aligns.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols, widths, numeric, rendered = _layout(rows, columns)
    header = "  ".join(_align(c, c, widths, numeric) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    body = [
        "  ".join(_align(cell, c, widths, numeric) for cell, c in zip(cells, cols))
        for cells in rendered
    ]
    return "\n".join([header, sep] + body)


def render_markdown_table(
    rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()
) -> str:
    """Render dict-rows as a GitHub-flavoured markdown pipe table.

    Cells are padded to a fixed column width (diff-friendly: one changed
    value touches one line) and numeric columns carry the ``---:``
    right-alignment marker.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols, widths, numeric, rendered = _layout(rows, columns)
    header = "| " + " | ".join(_align(c, c, widths, numeric) for c in cols) + " |"
    marks = [
        ("-" * max(3, widths[c] - 1)) + ":" if numeric[c]
        else "-" * max(3, widths[c])
        for c in cols
    ]
    sep = "| " + " | ".join(marks) + " |"
    body = [
        "| " + " | ".join(
            _align(cell, c, widths, numeric) for cell, c in zip(cells, cols)
        ) + " |"
        for cells in rendered
    ]
    return "\n".join([header, sep] + body)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def summarize_by(
    rows: Iterable[Dict[str, object]], group_key: str, value_key: str
) -> Dict[str, Dict[str, float]]:
    """Group rows and report min/mean/max of a numeric column."""
    groups: Dict[str, List[float]] = {}
    for row in rows:
        value = float(row[value_key])  # type: ignore[arg-type]
        groups.setdefault(str(row[group_key]), []).append(value)
    out: Dict[str, Dict[str, float]] = {}
    for key, values in groups.items():
        out[key] = {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
            "count": float(len(values)),
        }
    return out
