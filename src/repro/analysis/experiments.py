"""Programmatic experiment registry.

One callable per experiment of DESIGN.md's index (E1..E15), each
returning a printable report.  The pytest benchmarks in ``benchmarks/``
remain the canonical, asserting versions; this registry powers
``python -m repro experiment <id>`` and ``examples/reproduce_all.py`` for
quick interactive reproduction.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from ..baselines import offline_lower_bound, run_cte
from ..bounds import (
    bfdn_bound,
    bfdn_ell_bound,
    compute_region_map,
    lemma2_bound,
    render_ascii,
    theorem3_bound,
)
from ..core import BFDN, BFDNEll, WriteReadBFDN, run_with_breakdowns
from ..game import (
    BalancedPlayer,
    GreedyAdversary,
    UrnBoard,
    game_value,
    play_game,
    run_allocation,
)
from ..graphs import proposition9_bound, random_obstacle_grid, run_graph_bfdn
from ..sim import BlockExplorers, RandomBreakdowns, Simulator, run_reactive
from ..trees import generators as gen
from .report import render_table
from .sweep import run_sweep


def e1_figure1() -> str:
    """Figure 1 region chart (k = 2^20)."""
    region_map = compute_region_map(1 << 20, resolution=36, log2_n_max=110, log2_d_max=70)
    return render_ascii(region_map) + f"\n\ncells won: {region_map.counts()}"


def e2_theorem1() -> str:
    """Theorem 1: measured rounds vs bound across families."""
    records = run_sweep(
        {"BFDN": BFDN}, gen.standard_families(k=8, size="small"), (2, 8)
    )
    ok = all(r.rounds <= r.bfdn_bound for r in records)
    return render_table([r.as_row() for r in records]) + f"\n\nbound holds: {ok}"


def e3_urn_game() -> str:
    """Theorem 3: simulated vs DP vs bound."""
    rows = []
    for k in (4, 8, 16, 32, 64):
        sim = play_game(UrnBoard(k, k), GreedyAdversary(), BalancedPlayer()).steps
        rows.append(
            {"k": k, "simulated": sim, "DP": game_value(k, k),
             "bound": round(theorem3_bound(k), 1)}
        )
    return render_table(rows)


def e4_lemma2() -> str:
    """Lemma 2: per-depth re-anchor counts."""
    rows = []
    k = 8
    for label, tree in [("caterpillar", gen.caterpillar(30, 5)),
                        ("comb", gen.comb(20, 8))]:
        res = Simulator(tree, BFDN(), k).run()
        interior = {
            d: c for d, c in res.metrics.reanchors_per_depth().items()
            if 1 <= d <= tree.depth - 1
        }
        rows.append(
            {"tree": label, "max/depth": max(interior.values(), default=0),
             "bound": round(lemma2_bound(k, tree.max_degree), 1)}
        )
    return render_table(rows)


def e5_writeread() -> str:
    """Proposition 6: write-read vs centralized BFDN."""
    rows = []
    k = 4
    for label, tree in gen.standard_families(k=k, size="small")[:8]:
        central = Simulator(tree, BFDN(), k).run().rounds
        wr = Simulator(tree, WriteReadBFDN(), k).run().rounds
        rows.append(
            {"tree": label, "central": central, "write-read": wr,
             "bound": round(bfdn_bound(tree.n, tree.depth, k, tree.max_degree), 1)}
        )
    return render_table(rows)


def e6_breakdowns() -> str:
    """Proposition 7: A(M) at completion vs bound."""
    k = 8
    tree = gen.random_recursive(400)
    rows = []
    for p in (0.25, 0.5, 0.75):
        out = run_with_breakdowns(tree, k, RandomBreakdowns(p, 200 * tree.n, seed=1))
        rows.append(
            {"p": p, "wall": out.result.wall_rounds,
             "A(M)": round(out.average_allowed, 1), "bound": round(out.bound, 1)}
        )
    return render_table(rows)


def e7_graphs() -> str:
    """Proposition 9: grids with obstacles."""
    g = random_obstacle_grid(16, 16, 8, seed=3)
    rows = []
    for k in (2, 4, 8):
        res = run_graph_bfdn(g, k)
        rows.append(
            {"k": k, "rounds": res.rounds,
             "bound": round(proposition9_bound(g.num_edges, g.radius, k, g.max_degree), 1),
             "closed": res.closed_edges}
        )
    return render_table(rows)


def e8_bfdn_ell() -> str:
    """Theorem 10: depth sweep, BFDN vs BFDN_ell."""
    k, n = 16, 2_048
    rows = []
    for depth in (16, 128, 512):
        tree = gen.random_tree_with_depth(n, depth)
        rows.append(
            {"D": depth,
             "BFDN": Simulator(tree, BFDN(), k).run().rounds,
             "BFDN_l2": Simulator(tree, BFDNEll(2), k).run().rounds,
             "thm1": round(bfdn_bound(n, depth, k)),
             "thm10(l2)": round(bfdn_ell_bound(n, depth, k, 2))}
        )
    return render_table(rows)


def e9_comparison() -> str:
    """Competitive overhead: BFDN vs CTE vs offline."""
    from ..baselines import CTE

    records = run_sweep(
        {"BFDN": BFDN, "CTE": CTE},
        gen.standard_families(k=8, size="small")[:8],
        (8,),
        allow_shared_reveal={"CTE": True},
    )
    return render_table([r.as_row() for r in records])


def e10_cte_traps() -> str:
    """CTE on fixed trap trees (honest constant-factor residue)."""
    from ..trees.adversarial import cte_trap_tree

    k = 16
    rows = []
    for gadgets, trap in ((8, 16), (32, 4)):
        tree = cte_trap_tree(k, gadgets, trap)
        lower = offline_lower_bound(tree.n, tree.depth, k)
        rows.append(
            {"gadgets": gadgets, "trap": trap,
             "CTE": run_cte(tree, k).rounds,
             "BFDN": Simulator(tree, BFDN(), k).run().rounds,
             "lower": lower}
        )
    return render_table(rows)


def e11_allocation() -> str:
    """Resource allocation switch bound."""
    rng = random.Random(0)
    rows = []
    for k in (8, 32):
        work = [rng.randrange(1, 200) for _ in range(k)]
        res = run_allocation(work)
        rows.append(
            {"k": k, "switches": res.switches, "bound": round(res.bound, 1),
             "rounds": res.rounds, "ideal": round(res.ideal_rounds, 1)}
        )
    return render_table(rows)


def e12_ablation() -> str:
    """Reanchor policy ablation on the stress tree."""
    from ..core import make_policy
    from ..trees.adversarial import reanchor_stress_tree

    k = 8
    tree = reanchor_stress_tree(k, 12)
    rows = []
    for policy in ("least-loaded", "random", "round-robin", "most-loaded"):
        res = Simulator(tree, BFDN(policy=make_policy(policy)), k).run()
        rows.append({"policy": policy, "rounds": res.rounds})
    return render_table(rows)


def e13_reactive() -> str:
    """Remark 8: reactive adversaries."""
    tree = gen.random_recursive(300)
    rows = []
    for budget in (0, 1, 3):
        out = run_reactive(tree, BFDN(), 8, BlockExplorers(budget, 30 * tree.n))
        rows.append(
            {"budget": budget, "wall": out.result.wall_rounds,
             "interference": round(out.interference, 2)}
        )
    note = ("\nnote: with budget >= concurrent explorers the reactive adversary"
            "\ndenies discovery outright — Prop 7's bound does not carry over.")
    return render_table(rows) + note


def e14_shortcut() -> str:
    """Shortcut re-anchoring ablation: the cost of root returns."""
    from ..core import ShortcutBFDN

    k = 8
    rows = []
    for label, tree in [("caterpillar", gen.caterpillar(30, 5)),
                        ("deep-random", gen.random_tree_with_depth(600, 60))]:
        standard = Simulator(tree, BFDN(), k).run().rounds
        shortcut = Simulator(tree, ShortcutBFDN(), k).run().rounds
        rows.append({"tree": label, "BFDN": standard, "shortcut": shortcut,
                     "speedup": round(standard / max(shortcut, 1), 2)})
    return render_table(rows)


def e15_logk_question() -> str:
    """Open question probe: overhead growth in k at fixed (n, D)."""
    import math

    from ..trees.adversarial import reanchor_stress_tree

    tree = reanchor_stress_tree(32, 12)
    rows = []
    for k in (2, 8, 32):
        res = Simulator(tree, BFDN(), k).run()
        overhead = res.rounds - 2 * tree.n / k
        budget = tree.depth ** 2 * (math.log(k) + 3)
        rows.append({"k": k, "overhead": round(overhead, 1),
                     "budget": round(budget, 1)})
    return render_table(rows)


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "E1": e1_figure1,
    "E2": e2_theorem1,
    "E3": e3_urn_game,
    "E4": e4_lemma2,
    "E5": e5_writeread,
    "E6": e6_breakdowns,
    "E7": e7_graphs,
    "E8": e8_bfdn_ell,
    "E9": e9_comparison,
    "E10": e10_cte_traps,
    "E11": e11_allocation,
    "E12": e12_ablation,
    "E13": e13_reactive,
    "E14": e14_shortcut,
    "E15": e15_logk_question,
}


def run_experiment(exp_id: str) -> str:
    """Run one experiment by id and return its report."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    func = EXPERIMENTS[key]
    header = f"== {key}: {func.__doc__.strip()} =="  # type: ignore[union-attr]
    return header + "\n" + func()
