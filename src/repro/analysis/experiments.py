"""Programmatic experiment registry.

One callable per experiment of DESIGN.md's index (E1..E15), each
returning a printable report.  The pytest benchmarks in ``benchmarks/``
remain the canonical, asserting versions; this registry powers
``python -m repro experiment <id>`` and ``examples/reproduce_all.py`` for
quick interactive reproduction.

Every simulation-backed experiment enumerates
:class:`~repro.scenario.ScenarioSpec` values and routes them through
:func:`~repro.analysis.sweep.run_scenarios_cached`, so the full suite is
resumable: run with an :class:`ExperimentContext` carrying a
:class:`~repro.orchestrator.store.ResultStore` and a re-run serves every
row from the content-addressed cache.  E1 (the Figure 1 region chart)
and E11 (the allocation switch bound) are pure analytical computations
with no simulation to cache and run inline.

``REPRO_EXPERIMENT_SCALE=tiny`` shrinks every experiment's instances for
smoke runs (CI uses this); the default scale reproduces the paper-sized
instances.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import registry
from ..bounds import (
    bfdn_ell_bound,
    compute_region_map,
    lemma2_bound,
    render_ascii,
)
from ..game import game_value, run_allocation
from ..orchestrator import TreeSpec
from ..orchestrator.events import ProgressTracker
from ..orchestrator.store import ResultStore
from ..scenario import ScenarioSpec
from ..trees import generators as gen
from .report import render_table
from .sweep import record_from_row, run_scenarios_cached, run_sweep_cached


def _default_scale() -> str:
    """Experiment scale from ``REPRO_EXPERIMENT_SCALE`` (full or tiny)."""
    scale = os.environ.get("REPRO_EXPERIMENT_SCALE", "full")
    if scale not in ("full", "tiny"):
        raise ValueError(
            f"REPRO_EXPERIMENT_SCALE must be 'full' or 'tiny', got {scale!r}"
        )
    return scale


@dataclass
class ExperimentContext:
    """Shared run context for the experiment registry.

    ``store`` enables the content-addressed cache (``None`` runs
    everything fresh, which keeps direct test invocations hermetic);
    ``tracker`` aggregates hit/miss/failure counts across all the
    experiments run under this context; ``scale`` picks paper-sized
    (``full``) or smoke-sized (``tiny``) instances.
    """

    store: Optional[ResultStore] = None
    tracker: ProgressTracker = field(default_factory=ProgressTracker)
    scale: str = field(default_factory=_default_scale)
    max_workers: int = 0
    timeout: Optional[float] = None
    #: A :class:`repro.obs.TelemetryConfig` to stream every experiment
    #: batch into one JSONL trace (``None`` = no telemetry).
    telemetry: object = None

    def pick(self, full, tiny):
        """``full`` or ``tiny`` depending on the context's scale."""
        return tiny if self.scale == "tiny" else full

    def run(self, specs: Sequence[ScenarioSpec]) -> List[Dict[str, object]]:
        """Run specs through the cached orchestrator path, in order."""
        run = run_scenarios_cached(
            specs,
            store=self.store,
            tracker=self.tracker,
            max_workers=self.max_workers,
            timeout=self.timeout,
            telemetry=self.telemetry,
        )
        if run.failures:
            first = run.failures[0]
            raise RuntimeError(
                f"{len(run.failures)} scenario(s) failed, e.g. "
                f"{first.spec.label or first.spec.fingerprint()}: {first.error}"
            )
        return run.rows


def _tree_spec(
    ctx: ExperimentContext,
    algorithm: str,
    tree,
    k: int,
    label: str,
    **kwargs,
) -> ScenarioSpec:
    """A tree-kind spec over a concrete tree (cached via parent array)."""
    return ScenarioSpec(
        kind=kwargs.pop("kind", "tree"),
        algorithm=algorithm,
        substrate=TreeSpec.from_tree(tree),
        k=k,
        label=label,
        **kwargs,
    )


def e1_figure1(ctx: ExperimentContext) -> str:
    """Figure 1 region chart (k = 2^20)."""
    # Pure analytical computation (no simulation): nothing to cache.
    resolution = ctx.pick(36, 12)
    region_map = compute_region_map(
        1 << 20, resolution=resolution, log2_n_max=110, log2_d_max=70
    )
    return render_ascii(region_map) + f"\n\ncells won: {region_map.counts()}"


def e2_theorem1(ctx: ExperimentContext) -> str:
    """Theorem 1: measured rounds vs bound across families."""
    families = gen.standard_families(k=8, size="small")
    families = ctx.pick(families, families[:4])
    specs = [
        _tree_spec(ctx, "bfdn", tree, k, label, compute_bounds=True)
        for label, tree in families
        for k in (2, 8)
    ]
    records = [record_from_row(row) for row in ctx.run(specs)]
    ok = all(r.rounds <= r.bfdn_bound for r in records)
    return render_table([r.as_row() for r in records]) + f"\n\nbound holds: {ok}"


def e3_urn_game(ctx: ExperimentContext) -> str:
    """Theorem 3: simulated vs DP vs bound."""
    from ..bounds import theorem3_bound

    team_sizes = ctx.pick((4, 8, 16, 32, 64), (4, 8))
    specs = [
        ScenarioSpec(
            kind="game",
            algorithm="urn-game",
            substrate=TreeSpec.named(registry.GAME_FAMILY, k),
            k=k,
            policy="balanced",
            adversary="greedy",
            label=f"urns-k{k}",
        )
        for k in team_sizes
    ]
    rows = []
    for row in ctx.run(specs):
        k = int(row["n"])
        rows.append(
            {"k": k, "simulated": row["rounds"], "DP": game_value(k, k),
             "bound": round(theorem3_bound(k), 1)}
        )
    return render_table(rows)


def e4_lemma2(ctx: ExperimentContext) -> str:
    """Lemma 2: per-depth re-anchor counts."""
    k = 8
    trees = [
        ("caterpillar", gen.caterpillar(*ctx.pick((30, 5), (10, 3)))),
        ("comb", gen.comb(*ctx.pick((20, 8), (8, 4)))),
    ]
    specs = [_tree_spec(ctx, "bfdn", tree, k, label) for label, tree in trees]
    rows = []
    for row in ctx.run(specs):
        rows.append(
            {"tree": row["label"],
             "max/depth": row["max_interior_reanchors"],
             "bound": round(lemma2_bound(k, int(row["max_degree"])), 1)}
        )
    return render_table(rows)


def e5_writeread(ctx: ExperimentContext) -> str:
    """Proposition 6: write-read vs centralized BFDN."""
    from ..bounds import bfdn_bound

    k = 4
    families = gen.standard_families(k=k, size="small")[: ctx.pick(8, 4)]
    specs = [
        _tree_spec(ctx, algorithm, tree, k, label)
        for label, tree in families
        for algorithm in ("bfdn", "bfdn-wr")
    ]
    results = ctx.run(specs)
    rows = []
    for central, wr in zip(results[::2], results[1::2]):
        rows.append(
            {"tree": central["label"],
             "central": central["rounds"],
             "write-read": wr["rounds"],
             "bound": round(
                 bfdn_bound(
                     int(central["n"]), int(central["depth"]), k,
                     int(central["max_degree"]),
                 ), 1,
             )}
        )
    return render_table(rows)


def e6_breakdowns(ctx: ExperimentContext) -> str:
    """Proposition 7: A(M) at completion vs bound."""
    k = 8
    tree = gen.random_recursive(ctx.pick(400, 80))
    specs = [
        _tree_spec(
            ctx, "bfdn", tree, k, f"breakdowns-p{p}",
            adversary="random-breakdowns",
            adversary_params={"p": p, "horizon_per_n": 200, "seed": 1},
        )
        for p in (0.25, 0.5, 0.75)
    ]
    rows = []
    for p, row in zip((0.25, 0.5, 0.75), ctx.run(specs)):
        rows.append(
            {"p": p, "wall": row["wall_rounds"],
             "A(M)": round(float(row["average_allowed"]), 1),
             "bound": round(float(row["adversarial_bound"]), 1)}
        )
    return render_table(rows)


def e7_graphs(ctx: ExperimentContext) -> str:
    """Proposition 9: grids with obstacles."""
    # obstacle-grid resolves n=256 to the 16x16 grid with n//32 = 8
    # obstacles used by the benchmarks.
    nodes = ctx.pick(256, 64)
    specs = [
        ScenarioSpec(
            kind="graph",
            algorithm="graph-bfdn",
            substrate=TreeSpec.named("obstacle-grid", nodes, seed=3),
            k=k,
            label=f"grid-k{k}",
            compute_bounds=True,
        )
        for k in (2, 4, 8)
    ]
    rows = []
    for row in ctx.run(specs):
        rows.append(
            {"k": row["k"], "rounds": row["rounds"],
             "bound": round(float(row["bfdn_bound"]), 1),
             "closed": row["closed_edges"]}
        )
    return render_table(rows)


def e8_bfdn_ell(ctx: ExperimentContext) -> str:
    """Theorem 10: depth sweep, BFDN vs BFDN_ell."""
    from ..bounds import bfdn_bound

    k = 16
    n = ctx.pick(2_048, 256)
    depths = ctx.pick((16, 128, 512), (8, 32))
    specs = [
        _tree_spec(
            ctx, algorithm, gen.random_tree_with_depth(n, depth), k,
            f"depth-{depth}",
        )
        for depth in depths
        for algorithm in ("bfdn", "bfdn-ell2")
    ]
    results = ctx.run(specs)
    rows = []
    for depth, (plain, ell) in zip(depths, zip(results[::2], results[1::2])):
        rows.append(
            {"D": depth,
             "BFDN": plain["rounds"],
             "BFDN_l2": ell["rounds"],
             "thm1": round(bfdn_bound(n, depth, k)),
             "thm10(l2)": round(bfdn_ell_bound(n, depth, k, 2))}
        )
    return render_table(rows)


def e9_comparison(ctx: ExperimentContext) -> str:
    """Competitive overhead: BFDN vs CTE vs offline."""
    families = gen.standard_families(k=8, size="small")[: ctx.pick(8, 4)]
    run = run_sweep_cached(
        ["bfdn", "cte"],
        families,
        (8,),
        store=ctx.store,
        tracker=ctx.tracker,
        max_workers=ctx.max_workers,
        timeout=ctx.timeout,
    )
    return render_table([r.as_row() for r in run.records])


def e10_cte_traps(ctx: ExperimentContext) -> str:
    """CTE on fixed trap trees (honest constant-factor residue)."""
    from ..trees.adversarial import cte_trap_tree

    k = 16
    configs = ctx.pick(((8, 16), (32, 4)), ((2, 4), (4, 2)))
    specs = [
        _tree_spec(
            ctx, algorithm, cte_trap_tree(k, gadgets, trap), k,
            f"trap-g{gadgets}-t{trap}", compute_bounds=True,
        )
        for gadgets, trap in configs
        for algorithm in ("cte", "bfdn")
    ]
    results = ctx.run(specs)
    rows = []
    for (gadgets, trap), (cte, bfdn) in zip(
        configs, zip(results[::2], results[1::2])
    ):
        rows.append(
            {"gadgets": gadgets, "trap": trap,
             "CTE": cte["rounds"], "BFDN": bfdn["rounds"],
             "lower": cte["lower_bound"]}
        )
    return render_table(rows)


def e11_allocation(ctx: ExperimentContext) -> str:
    """Resource allocation switch bound."""
    # Pure analytical computation (no simulation): nothing to cache.
    rng = random.Random(0)
    rows = []
    for k in ctx.pick((8, 32), (4, 8)):
        work = [rng.randrange(1, 200) for _ in range(k)]
        res = run_allocation(work)
        rows.append(
            {"k": k, "switches": res.switches, "bound": round(res.bound, 1),
             "rounds": res.rounds, "ideal": round(res.ideal_rounds, 1)}
        )
    return render_table(rows)


def e12_ablation(ctx: ExperimentContext) -> str:
    """Reanchor policy ablation on the stress tree."""
    from ..trees.adversarial import reanchor_stress_tree

    k = 8
    tree = reanchor_stress_tree(k, ctx.pick(12, 4))
    specs = [
        _tree_spec(ctx, "bfdn", tree, k, policy, policy=policy)
        for policy in registry.REANCHOR_POLICIES
    ]
    rows = [
        {"policy": row["policy"], "rounds": row["rounds"]}
        for row in ctx.run(specs)
    ]
    return render_table(rows)


def e13_reactive(ctx: ExperimentContext) -> str:
    """Remark 8: reactive adversaries."""
    tree = gen.random_recursive(ctx.pick(300, 80))
    budgets = (0, 1, 3)
    specs = [
        _tree_spec(
            ctx, "bfdn", tree, 8, f"reactive-b{budget}", kind="reactive",
            adversary="block-explorers",
            adversary_params={"budget": budget, "horizon_per_n": 30},
        )
        for budget in budgets
    ]
    rows = []
    for budget, row in zip(budgets, ctx.run(specs)):
        rows.append(
            {"budget": budget, "wall": row["wall_rounds"],
             "interference": round(float(row["interference"]), 2)}
        )
    note = ("\nnote: with budget >= concurrent explorers the reactive adversary"
            "\ndenies discovery outright — Prop 7's bound does not carry over.")
    return render_table(rows) + note


def e14_shortcut(ctx: ExperimentContext) -> str:
    """Shortcut re-anchoring ablation: the cost of root returns."""
    k = 8
    trees = [
        ("caterpillar", gen.caterpillar(*ctx.pick((30, 5), (10, 3)))),
        ("deep-random",
         gen.random_tree_with_depth(*ctx.pick((600, 60), (120, 16)))),
    ]
    specs = [
        _tree_spec(ctx, algorithm, tree, k, label)
        for label, tree in trees
        for algorithm in ("bfdn", "bfdn-shortcut")
    ]
    results = ctx.run(specs)
    rows = []
    for (label, _), (standard, shortcut) in zip(
        trees, zip(results[::2], results[1::2])
    ):
        rows.append(
            {"tree": label, "BFDN": standard["rounds"],
             "shortcut": shortcut["rounds"],
             "speedup": round(
                 int(standard["rounds"]) / max(int(shortcut["rounds"]), 1), 2
             )}
        )
    return render_table(rows)


def e15_logk_question(ctx: ExperimentContext) -> str:
    """Open question probe: overhead growth in k at fixed (n, D)."""
    from ..trees.adversarial import reanchor_stress_tree

    tree = reanchor_stress_tree(32, ctx.pick(12, 4))
    team_sizes = (2, 8, 32)
    specs = [
        _tree_spec(ctx, "bfdn", tree, k, f"stress-k{k}") for k in team_sizes
    ]
    rows = []
    for k, row in zip(team_sizes, ctx.run(specs)):
        overhead = int(row["rounds"]) - 2 * int(row["n"]) / k
        budget = int(row["depth"]) ** 2 * (math.log(k) + 3)
        rows.append({"k": k, "overhead": round(overhead, 1),
                     "budget": round(budget, 1)})
    return render_table(rows)


EXPERIMENTS: Dict[str, Callable[[ExperimentContext], str]] = {
    "E1": e1_figure1,
    "E2": e2_theorem1,
    "E3": e3_urn_game,
    "E4": e4_lemma2,
    "E5": e5_writeread,
    "E6": e6_breakdowns,
    "E7": e7_graphs,
    "E8": e8_bfdn_ell,
    "E9": e9_comparison,
    "E10": e10_cte_traps,
    "E11": e11_allocation,
    "E12": e12_ablation,
    "E13": e13_reactive,
    "E14": e14_shortcut,
    "E15": e15_logk_question,
}


def run_experiment(exp_id: str, ctx: Optional[ExperimentContext] = None) -> str:
    """Run one experiment by id and return its report.

    Without a context the experiment runs uncached at full scale; pass
    an :class:`ExperimentContext` with a store to serve repeat runs from
    the orchestrator cache (``python -m repro experiment`` does).
    """
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    func = EXPERIMENTS[key]
    header = f"== {key}: {func.__doc__.strip()} =="  # type: ignore[union-attr]
    return header + "\n" + func(ctx if ctx is not None else ExperimentContext())
