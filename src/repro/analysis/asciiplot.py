"""Terminal plots for benchmark series (no plotting library available
offline, so the charts render as ASCII).

``line_plot`` draws one or more named series against a shared x-axis;
``scatter_loglog`` places points on log-log axes, the natural scale for
the power laws the paper's bounds are made of.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(pos * (cells - 1)))))


def line_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 70,
    height: int = 18,
    title: str = "",
) -> str:
    """Plot named y-series over a shared x-axis.

    Each series is drawn with its own glyph (`*`, `+`, `o`, ...); the
    legend maps glyphs to names.
    """
    if not xs:
        return "(no data)"
    glyphs = "*+o#x@%&"
    all_ys = [y for ys in series.values() for y in ys]
    lo_y, hi_y = min(all_ys), max(all_ys)
    lo_x, hi_x = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        for x, y in zip(xs, ys):
            col = _scale(x, lo_x, hi_x, width)
            row = height - 1 - _scale(y, lo_y, hi_y, height)
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    for row_idx, row in enumerate(grid):
        label = hi_y if row_idx == 0 else (lo_y if row_idx == height - 1 else None)
        prefix = f"{label:>10.1f} |" if label is not None else " " * 11 + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "-" * width)
    lines.append(" " * 11 + f"x: {lo_x:g} .. {hi_x:g}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def scatter_loglog(
    points: Dict[str, List[Tuple[float, float]]],
    width: int = 70,
    height: int = 18,
    title: str = "",
) -> str:
    """Scatter named point sets on log-log axes.

    Points with non-positive coordinates are dropped (no log image).
    """
    cleaned = {
        name: [(math.log10(x), math.log10(y)) for x, y in pts if x > 0 and y > 0]
        for name, pts in points.items()
    }
    cleaned = {name: pts for name, pts in cleaned.items() if pts}
    if not cleaned:
        return "(no data)"
    xs = [p[0] for pts in cleaned.values() for p in pts]
    ys = [p[1] for pts in cleaned.values() for p in pts]
    lo_x, hi_x = min(xs), max(xs)
    lo_y, hi_y = min(ys), max(ys)
    glyphs = "*+o#x@%&"
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(cleaned.items()):
        glyph = glyphs[idx % len(glyphs)]
        for lx, ly in pts:
            col = _scale(lx, lo_x, hi_x, width)
            row = height - 1 - _scale(ly, lo_y, hi_y, height)
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("-" * (width + 1))
    lines.append(f"log10 x: {lo_x:.1f} .. {hi_x:.1f}   "
                 f"log10 y: {lo_y:.1f} .. {hi_y:.1f}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(cleaned)
    )
    lines.append(legend)
    return "\n".join(lines)
