"""Monte Carlo studies of the bounds' slack.

The paper's guarantees are worst-case; these helpers measure where
*typical* instances land.  :func:`overhead_distribution` samples random
trees at fixed ``(n, D, k)`` and reports the distribution of BFDN's
additive overhead ``T - 2n/k`` against the Theorem 1 budget
``D^2 (min(log Delta, log k) + 3)``; :func:`game_length_distribution`
does the same for the urn game against random adversaries vs Theorem 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bounds.guarantees import bfdn_bound, theorem3_bound
from ..core.bfdn import BFDN
from ..game import BalancedPlayer, RandomAdversary, UrnBoard, play_game
from ..sim.engine import Simulator
from ..trees.generators import random_tree_with_depth


@dataclass
class Distribution:
    """An empirical sample with quantile accessors."""

    values: List[float]

    def quantile(self, q: float) -> float:
        """Empirical quantile by nearest-rank (``0 <= q <= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        ordered = sorted(self.values)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def summary(self) -> Dict[str, float]:
        return {
            "samples": float(len(self.values)),
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "max": self.max,
        }


@dataclass
class SlackStudy:
    """An empirical distribution against its theoretical budget."""

    distribution: Distribution
    budget: float

    @property
    def worst_utilisation(self) -> float:
        """``max observed / budget`` — how much of the worst-case budget
        typical instances actually consume."""
        return self.distribution.max / self.budget if self.budget else 0.0

    def within_budget(self) -> bool:
        return self.distribution.max <= self.budget


def overhead_distribution(
    n: int,
    depth: int,
    k: int,
    num_samples: int = 20,
    seed: int = 0,
) -> SlackStudy:
    """Sample BFDN's additive overhead over random depth-``depth`` trees."""
    rng = random.Random(seed)
    overheads: List[float] = []
    budget = 0.0
    for _ in range(num_samples):
        tree = random_tree_with_depth(n, depth, rng)
        result = Simulator(tree, BFDN(), k).run()
        overheads.append(result.rounds - 2 * tree.n / k)
        budget = max(
            budget, bfdn_bound(tree.n, tree.depth, k, tree.max_degree) - 2 * tree.n / k
        )
    return SlackStudy(Distribution(overheads), budget)


def game_length_distribution(
    k: int,
    delta: Optional[int] = None,
    num_samples: int = 50,
    seed: int = 0,
) -> SlackStudy:
    """Sample urn-game lengths against random adversaries."""
    delta = delta if delta is not None else k
    lengths: List[float] = []
    for i in range(num_samples):
        record = play_game(
            UrnBoard(k, delta), RandomAdversary(seed + i), BalancedPlayer()
        )
        lengths.append(float(record.steps))
    return SlackStudy(Distribution(lengths), theorem3_bound(k, delta))
