"""Multi-seed replication statistics.

The simulations here are deterministic given the instance, but instances
are random: proper reporting aggregates over seeds.  This module runs a
measurement across seeds and reports mean, standard deviation and a
normal-approximation confidence interval, plus a paired comparison helper
for algorithm A-vs-B claims ("BFDN beats CTE on this family").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass
class Replication:
    """Aggregated measurements across seeds."""

    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (default 95%)."""
        half = z * self.std / math.sqrt(self.n) if self.n > 1 else 0.0
        return (self.mean - half, self.mean + half)

    def summary(self) -> Dict[str, float]:
        lo, hi = self.confidence_interval()
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "ci_lo": lo,
            "ci_hi": hi,
            "min": min(self.values),
            "max": max(self.values),
        }


def replicate(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> Replication:
    """Run ``measure(seed)`` for every seed."""
    if not seeds:
        raise ValueError("at least one seed required")
    return Replication([float(measure(seed)) for seed in seeds])


@dataclass
class PairedComparison:
    """Paired A-vs-B measurements over shared instances."""

    a: List[float]
    b: List[float]

    @property
    def differences(self) -> List[float]:
        return [x - y for x, y in zip(self.a, self.b)]

    @property
    def mean_difference(self) -> float:
        diffs = self.differences
        return sum(diffs) / len(diffs)

    @property
    def wins(self) -> int:
        """Instances where A is strictly smaller (faster)."""
        return sum(1 for d in self.differences if d < 0)

    def a_dominates(self) -> bool:
        """A is never worse and somewhere strictly better."""
        diffs = self.differences
        return all(d <= 0 for d in diffs) and any(d < 0 for d in diffs)


def compare_paired(
    measure_a: Callable[[int], float],
    measure_b: Callable[[int], float],
    seeds: Sequence[int],
) -> PairedComparison:
    """Measure A and B on the same seeds (hence the same instances)."""
    if not seeds:
        raise ValueError("at least one seed required")
    return PairedComparison(
        a=[float(measure_a(s)) for s in seeds],
        b=[float(measure_b(s)) for s in seeds],
    )
