"""Empirical scaling-law estimation.

The paper's guarantees are power laws — the overhead of Theorem 1 scales
like ``D^2``, the urn game like ``k log k``, BFDN_ell's depth term like
``D^{1+1/ell}`` — so the quantitative reproduction fits measured series
with log-log least squares and checks the exponents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass
class PowerLawFit:
    """``y ~ coefficient * x^exponent`` fitted on log-log axes."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = a log x + b``.

    Points with non-positive coordinates are rejected (they have no
    log-log image).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting needs positive data")
    lx = [math.log(float(x)) for x in xs]
    ly = [math.log(float(y)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("power-law fitting needs at least two distinct x")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly)) / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly))
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
    )


def measure_exponent(
    xs: Sequence[float],
    run: Callable[[float], float],
) -> Tuple[PowerLawFit, List[float]]:
    """Evaluate ``run`` on each ``x`` and fit the resulting series."""
    ys = [float(run(x)) for x in xs]
    return fit_power_law(xs, ys), ys


def doubling_ratios(ys: Sequence[float]) -> List[float]:
    """Successive ratios ``y[i+1] / y[i]`` — a constant ratio of ``2^a``
    on doubled inputs indicates exponent ``a``."""
    if any(y <= 0 for y in ys):
        raise ValueError("ratios need positive data")
    return [ys[i + 1] / ys[i] for i in range(len(ys) - 1)]
