"""Multiprocess sweep runner.

Large sweeps (many families × team sizes × seeds) are embarrassingly
parallel; this module fans :func:`repro.analysis.sweep.run_sweep`-style
jobs over a process pool.  Jobs are described by picklable specs (factory
*names*, not closures) so the pool can ship them to workers.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import CTE, OnlineDFS
from ..core import BFDN, BFDNEll, ShortcutBFDN, WriteReadBFDN
from ..sim.engine import Simulator
from ..trees.tree import Tree

#: Algorithms addressable by name in job specs (picklable indirection).
ALGORITHMS = {
    "bfdn": BFDN,
    "bfdn-wr": WriteReadBFDN,
    "bfdn-shortcut": ShortcutBFDN,
    "bfdn-ell2": lambda: BFDNEll(2),
    "bfdn-ell3": lambda: BFDNEll(3),
    "cte": CTE,
    "dfs": OnlineDFS,
}

_SHARED_REVEAL = {"cte"}


@dataclass(frozen=True)
class Job:
    """One simulation to run: algorithm name, tree (as a parent array), k."""

    algorithm: str
    label: str
    parents: Tuple[int, ...]
    k: int


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job."""

    algorithm: str
    label: str
    n: int
    depth: int
    k: int
    rounds: int
    complete: bool
    all_home: bool


def make_job(algorithm: str, label: str, tree: Tree, k: int) -> Job:
    """Build a picklable job spec from a tree object."""
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    parents = tuple(tree.parent(v) for v in range(tree.n))
    return Job(algorithm=algorithm, label=label, parents=parents, k=k)


def _run_job(job: Job) -> JobResult:
    tree = Tree([-1] + list(job.parents[1:]))
    algo = ALGORITHMS[job.algorithm]()
    result = Simulator(
        tree,
        algo,
        job.k,
        allow_shared_reveal=job.algorithm in _SHARED_REVEAL,
    ).run()
    return JobResult(
        algorithm=job.algorithm,
        label=job.label,
        n=tree.n,
        depth=tree.depth,
        k=job.k,
        rounds=result.rounds,
        complete=result.complete,
        all_home=result.all_home,
    )


def run_jobs(
    jobs: Sequence[Job], max_workers: Optional[int] = None
) -> List[JobResult]:
    """Run jobs over a process pool, preserving input order.

    ``max_workers=0`` (or 1) runs inline — handy for tests and platforms
    without fork support.
    """
    if max_workers is not None and max_workers <= 1:
        return [_run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_job, jobs))
