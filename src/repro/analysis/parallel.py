"""Multiprocess sweep runner (orchestrator-backed).

Large sweeps (many families × team sizes × seeds) are embarrassingly
parallel; this module fans :func:`repro.analysis.sweep.run_sweep`-style
jobs over the resilient worker pool in :mod:`repro.orchestrator`.  Jobs
are described by picklable specs (algorithm *names* resolved through
:mod:`repro.registry`, not closures) so workers can rebuild them.

:func:`run_jobs` keeps its historical raise-on-failure contract; pass a
:class:`~repro.orchestrator.store.ResultStore` to make runs cacheable
and resumable, or use :func:`repro.orchestrator.run_jobspecs` directly
for per-job outcomes that never raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..orchestrator import JobSpec, TreeSpec, run_jobspecs
from ..orchestrator.events import ProgressTracker
from ..orchestrator.store import ResultStore
from ..registry import ALGORITHMS, SHARED_REVEAL
from ..trees.tree import Tree

#: Backwards-compatible alias (the registry is the source of truth now).
_SHARED_REVEAL = SHARED_REVEAL


@dataclass(frozen=True)
class Job:
    """One simulation to run: algorithm name, tree (as a parent array), k."""

    algorithm: str
    label: str
    parents: Tuple[int, ...]
    k: int

    def to_spec(self) -> JobSpec:
        """The orchestrator spec equivalent to this job."""
        return JobSpec(
            algorithm=self.algorithm,
            tree=TreeSpec(parents=self.parents),
            k=self.k,
            label=self.label,
        )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job."""

    algorithm: str
    label: str
    n: int
    depth: int
    k: int
    rounds: int
    complete: bool
    all_home: bool


def make_job(algorithm: str, label: str, tree: Tree, k: int) -> Job:
    """Build a picklable job spec from a tree object."""
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    parents = tuple(tree.parent(v) for v in range(tree.n))
    return Job(algorithm=algorithm, label=label, parents=parents, k=k)


def run_jobs(
    jobs: Sequence[Job],
    max_workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    tracker: Optional[ProgressTracker] = None,
) -> List[JobResult]:
    """Run jobs over the resilient pool, preserving input order.

    ``max_workers=0`` (or 1) runs inline — handy for tests and platforms
    without fork support.  With a ``store``, previously computed jobs are
    cache hits and skip simulation entirely.  A job that still fails
    after its retries raises ``RuntimeError`` (matching the historical
    pool semantics); use :func:`repro.orchestrator.run_jobspecs` when a
    sweep must survive individual job failures.
    """
    outcomes = run_jobspecs(
        [job.to_spec() for job in jobs],
        store=store,
        max_workers=max_workers,
        timeout=timeout,
        retries=retries,
        tracker=tracker,
    )
    results: List[JobResult] = []
    for job, outcome in zip(jobs, outcomes):
        if not outcome.ok:
            raise RuntimeError(
                f"job {job.label!r} ({job.algorithm}, k={job.k}) failed "
                f"after {outcome.attempts} attempt(s): {outcome.error}"
            )
        row = outcome.row
        results.append(
            JobResult(
                algorithm=job.algorithm,
                label=job.label,
                n=int(row["n"]),
                depth=int(row["depth"]),
                k=job.k,
                rounds=int(row["rounds"]),
                complete=bool(row["complete"]),
                all_home=bool(row["all_home"]),
            )
        )
    return results


__all__ = ["ALGORITHMS", "Job", "JobResult", "make_job", "run_jobs"]
