"""Parameter-sweep harness used by the benchmarks and EXPERIMENTS.md.

A sweep runs a set of algorithms over a set of (tree, k) workloads and
collects one :class:`SweepRecord` per run, carrying the measured rounds
together with the theoretical quantities (Theorem 1 bound, offline lower
bound, competitive overhead/ratio) the paper's claims are about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines.offline import offline_lower_bound, offline_split_runtime
from ..bounds.guarantees import bfdn_bound, competitive_overhead, competitive_ratio
from ..sim.engine import ExplorationAlgorithm, Simulator
from ..trees.tree import Tree

#: A factory returning a fresh algorithm instance for every run.
AlgorithmFactory = Callable[[], ExplorationAlgorithm]


@dataclass
class SweepRecord:
    """One (algorithm, tree, k) measurement."""

    algorithm: str
    tree_label: str
    n: int
    depth: int
    max_degree: int
    k: int
    rounds: int
    complete: bool
    all_home: bool
    bfdn_bound: float
    lower_bound: int
    offline_split: int

    @property
    def overhead(self) -> float:
        """``T - 2n/k``: the additive overhead of Theorem 1."""
        return competitive_overhead(self.rounds, self.n, self.k)

    @property
    def ratio(self) -> float:
        """``T / (n/k + D)``: the classical competitive ratio."""
        return competitive_ratio(self.rounds, self.n, self.depth, self.k)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "tree": self.tree_label,
            "n": self.n,
            "D": self.depth,
            "k": self.k,
            "rounds": self.rounds,
            "bound": round(self.bfdn_bound, 1),
            "lower": self.lower_bound,
            "offline": self.offline_split,
            "overhead": round(self.overhead, 1),
            "ratio": round(self.ratio, 2),
        }


def run_sweep(
    algorithms: Dict[str, AlgorithmFactory],
    workloads: Iterable[Tuple[str, Tree]],
    team_sizes: Sequence[int],
    allow_shared_reveal: Optional[Dict[str, bool]] = None,
    max_rounds: Optional[int] = None,
) -> List[SweepRecord]:
    """Run every algorithm on every (tree, k) pair."""
    shared = allow_shared_reveal or {}
    records: List[SweepRecord] = []
    for label, tree in workloads:
        for k in team_sizes:
            lower = offline_lower_bound(tree.n, tree.depth, k)
            offline = offline_split_runtime(tree, k)
            for name, factory in algorithms.items():
                sim = Simulator(
                    tree,
                    factory(),
                    k,
                    allow_shared_reveal=shared.get(name, False),
                    max_rounds=max_rounds,
                )
                result = sim.run()
                records.append(
                    SweepRecord(
                        algorithm=name,
                        tree_label=label,
                        n=tree.n,
                        depth=tree.depth,
                        max_degree=tree.max_degree,
                        k=k,
                        rounds=result.rounds,
                        complete=result.complete,
                        all_home=result.all_home,
                        bfdn_bound=bfdn_bound(tree.n, tree.depth, k, tree.max_degree),
                        lower_bound=lower,
                        offline_split=offline,
                    )
                )
    return records
