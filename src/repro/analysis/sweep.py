"""Parameter-sweep harness used by the benchmarks and EXPERIMENTS.md.

A sweep runs a set of algorithms over a set of (tree, k) workloads and
collects one :class:`SweepRecord` per run, carrying the measured rounds
together with the theoretical quantities (Theorem 1 bound, offline lower
bound, competitive overhead/ratio) the paper's claims are about.

Two entry points:

* :func:`run_sweep` — the historical inline loop over arbitrary
  algorithm factories (used by the experiment registry);
* :func:`run_sweep_cached` — the orchestrated path: algorithms by
  *name*, jobs fanned over the resilient worker pool with a
  content-addressed result cache, so identical re-runs are pure cache
  hits and one crashing job never aborts the sweep.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

logger = logging.getLogger(__name__)

from ..baselines.offline import offline_lower_bound, offline_split_runtime
from ..bounds.guarantees import bfdn_bound, competitive_overhead, competitive_ratio
from ..orchestrator import JobOutcome, TreeSpec, run_jobspecs
from ..orchestrator.events import ProgressTracker
from ..orchestrator.store import ResultStore
from ..perf import TimingObserver
from ..scenario import ScenarioSpec, scenario_grid
from ..sim.engine import ExplorationAlgorithm, Simulator
from ..trees.tree import Tree

#: A factory returning a fresh algorithm instance for every run.
AlgorithmFactory = Callable[[], ExplorationAlgorithm]


@dataclass
class SweepRecord:
    """One (algorithm, tree, k) measurement."""

    algorithm: str
    tree_label: str
    n: int
    depth: int
    max_degree: int
    k: int
    rounds: int
    complete: bool
    all_home: bool
    bfdn_bound: float
    lower_bound: int
    offline_split: int
    #: Engine throughput of the run (billed rounds per second of engine
    #: time, via the perf timing observer); 0.0 for legacy rows.
    rounds_per_sec: float = 0.0

    @property
    def overhead(self) -> float:
        """``T - 2n/k``: the additive overhead of Theorem 1."""
        return competitive_overhead(self.rounds, self.n, self.k)

    @property
    def ratio(self) -> float:
        """``T / (n/k + D)``: the classical competitive ratio."""
        return competitive_ratio(self.rounds, self.n, self.depth, self.k)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "tree": self.tree_label,
            "n": self.n,
            "D": self.depth,
            "k": self.k,
            "rounds": self.rounds,
            "bound": round(self.bfdn_bound, 1),
            "lower": self.lower_bound,
            "offline": self.offline_split,
            "overhead": round(self.overhead, 1),
            "ratio": round(self.ratio, 2),
            "rps": round(self.rounds_per_sec),
        }


def run_sweep(
    algorithms: Dict[str, AlgorithmFactory],
    workloads: Iterable[Tuple[str, Tree]],
    team_sizes: Sequence[int],
    allow_shared_reveal: Optional[Dict[str, bool]] = None,
    max_rounds: Optional[int] = None,
) -> List[SweepRecord]:
    """Run every algorithm on every (tree, k) pair."""
    shared = allow_shared_reveal or {}
    records: List[SweepRecord] = []
    timing = TimingObserver()
    for label, tree in workloads:
        for k in team_sizes:
            lower = offline_lower_bound(tree.n, tree.depth, k)
            offline = offline_split_runtime(tree, k)
            for name, factory in algorithms.items():
                sim = Simulator(
                    tree,
                    factory(),
                    k,
                    allow_shared_reveal=shared.get(name, False),
                    max_rounds=max_rounds,
                    observers=[timing],
                )
                result = sim.run()
                records.append(
                    SweepRecord(
                        algorithm=name,
                        tree_label=label,
                        n=tree.n,
                        depth=tree.depth,
                        max_degree=tree.max_degree,
                        k=k,
                        rounds=result.rounds,
                        complete=result.complete,
                        all_home=result.all_home,
                        bfdn_bound=bfdn_bound(tree.n, tree.depth, k, tree.max_degree),
                        lower_bound=lower,
                        offline_split=offline,
                        rounds_per_sec=round(timing.rounds_per_sec(), 1),
                    )
                )
    return records


@dataclass
class SweepRun:
    """Outcome of an orchestrated sweep: records plus per-job outcomes.

    ``records`` holds one :class:`SweepRecord` per *successful* job (in
    job order); ``outcomes`` covers every job including failures, and
    ``tracker`` carries the aggregated progress counters.
    """

    records: List[SweepRecord]
    outcomes: List[JobOutcome]
    tracker: ProgressTracker

    @property
    def failures(self) -> List[JobOutcome]:
        """Jobs that produced no result even after retries."""
        return [outcome for outcome in self.outcomes if not outcome.ok]


def record_from_row(row: Dict[str, object]) -> SweepRecord:
    """Rebuild a :class:`SweepRecord` from an orchestrator result row.

    Tolerates rows without the bound columns (scenarios run with
    ``compute_bounds=False``) by defaulting them to zero.  Async-tree
    rows carry their guarantee as ``async_bound``; it lands in the same
    ``bound`` table column.
    """
    return SweepRecord(
        algorithm=str(row["algorithm"]),
        tree_label=str(row["label"]),
        n=int(row["n"]),
        depth=int(row["depth"]),
        max_degree=int(row["max_degree"]),
        k=int(row["k"]),
        rounds=int(row["rounds"]),
        complete=bool(row["complete"]),
        all_home=bool(row["all_home"]),
        bfdn_bound=float(row.get("bfdn_bound", row.get("async_bound", 0.0))),
        lower_bound=int(row.get("lower_bound", 0)),
        offline_split=int(row.get("offline_split", 0)),
        rounds_per_sec=float(row.get("rounds_per_sec", 0.0)),
    )


# Backwards-compatible private alias (pre-scenario name).
_record_from_row = record_from_row


@dataclass
class ScenarioRun:
    """Outcome of an orchestrated scenario batch: raw rows per job.

    Unlike :class:`SweepRun` this keeps the full result rows (scenario
    extras like ``average_allowed``, ``interference`` or
    ``max_interior_reanchors`` included) instead of projecting onto
    :class:`SweepRecord`.
    """

    rows: List[Dict[str, object]]
    outcomes: List[JobOutcome]
    tracker: ProgressTracker

    @property
    def failures(self) -> List[JobOutcome]:
        """Jobs that produced no result even after retries."""
        return [outcome for outcome in self.outcomes if not outcome.ok]


def run_scenarios_cached(
    specs: Sequence[ScenarioSpec],
    *,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = 0,
    timeout: Optional[float] = None,
    retries: int = 1,
    tracker: Optional[ProgressTracker] = None,
    telemetry=None,
) -> ScenarioRun:
    """Run an explicit list of scenario specs through the cached pool.

    This is the path every E1–E15 experiment routes through: the
    experiment enumerates :class:`~repro.scenario.ScenarioSpec` values,
    the orchestrator dedupes them by fingerprint, serves cache hits from
    the store and fans the misses over the worker pool.  ``rows`` come
    back in spec order (failed jobs omitted).  ``telemetry`` (a
    :class:`repro.obs.TelemetryConfig`) streams the batch into a JSONL
    trace; see :func:`repro.orchestrator.run_jobspecs`.
    """
    tracker = tracker if tracker is not None else ProgressTracker()
    logger.info("running %d scenario spec(s) (cache %s)",
                len(specs), "on" if store is not None else "off")
    outcomes = run_jobspecs(
        specs,
        store=store,
        max_workers=max_workers,
        timeout=timeout,
        retries=retries,
        tracker=tracker,
        telemetry=telemetry,
    )
    rows = [outcome.row for outcome in outcomes if outcome.ok]
    return ScenarioRun(rows=rows, outcomes=outcomes, tracker=tracker)


def run_sweep_cached(
    algorithms: Sequence[str],
    workloads: Iterable[Tuple[str, Union[Tree, TreeSpec]]],
    team_sizes: Sequence[int],
    *,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = 0,
    timeout: Optional[float] = None,
    retries: int = 1,
    max_rounds: Optional[int] = None,
    tracker: Optional[ProgressTracker] = None,
    policy: Optional[str] = None,
    adversary: Optional[str] = None,
    adversary_params: Optional[Dict[str, object]] = None,
    telemetry=None,
    backend: str = "reference",
    speed: Optional[str] = None,
    speed_params: Optional[Dict[str, object]] = None,
) -> SweepRun:
    """Run every named algorithm on every (tree, k) pair, orchestrated.

    Workloads are ``(label, tree_or_spec)`` pairs; passing
    :class:`~repro.orchestrator.TreeSpec` values (named families) keeps
    cache fingerprints compact, while concrete trees are cached via
    their parent arrays.  The worker also computes the Theorem 1 bound
    and the offline baselines, so a cache hit recomputes *nothing*.
    ``max_workers=0`` (the default) runs inline.

    ``policy`` names a re-anchor policy ablation, ``adversary`` (with
    ``adversary_params``) a break-down or reactive adversary from the
    registry — the scenario kind is inferred per algorithm, so one call
    can sweep adversarial tree scenarios next to graph/game entry
    points.  ``backend`` selects the round-engine backend for the
    ``tree``-kind jobs (non-default backends fingerprint separately, so
    cached reference rows are never reused for an array sweep).

    ``speed`` (with ``speed_params``) switches async-capable tree
    algorithms to ``async-tree`` scenarios driven by the named speed
    schedule — the asynchronous model's counterpart to ``adversary``.
    """
    workload_list = [
        (label, tree if isinstance(tree, TreeSpec) else TreeSpec.from_tree(tree))
        for label, tree in workloads
    ]
    specs = scenario_grid(
        algorithms,
        workload_list,
        team_sizes,
        policy=policy,
        adversary=adversary,
        adversary_params=adversary_params,
        max_rounds=max_rounds,
        compute_bounds=True,
        backend=backend,
        speed=speed,
        speed_params=speed_params,
    )
    tracker = tracker if tracker is not None else ProgressTracker()
    logger.info(
        "sweep: %d algorithm(s) x %d workload(s) x %d team size(s) = %d jobs",
        len(algorithms), len(workload_list), len(team_sizes), len(specs),
    )
    outcomes = run_jobspecs(
        specs,
        store=store,
        max_workers=max_workers,
        timeout=timeout,
        retries=retries,
        tracker=tracker,
        telemetry=telemetry,
    )
    records = [
        record_from_row(outcome.row) for outcome in outcomes if outcome.ok
    ]
    return SweepRun(records=records, outcomes=outcomes, tracker=tracker)
