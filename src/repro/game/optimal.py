"""Exact value of the balls-in-urns game against the balanced player.

The paper's proof of Theorem 3 introduces ``R(N, u)``: the largest number
of steps the game may still last once the balanced player's move has led to
a configuration with ``N`` balls in the never-chosen set ``U`` and
``u = |U|``.  Equations (1)–(2):

* ``R(N, u) = 0``                         when ``Delta * u - N <= 0``;
* ``N < k``:  ``R = 1 + max(R(N+1, u), R(N - ceil(N/u) + 1, u-1),
  R(N - floor(N/u) + 1, u-1))``;
* ``N == k``: ``R = 1 + max(R(N - ceil(N/u) + 1, u-1),
  R(N - floor(N/u) + 1, u-1))``.

The full game (all ``k`` urns unchosen, one ball each) lasts exactly
``R(k, k)`` against an optimal adversary.  Lemma 4 proves the maximum in
the ``N < k`` case is always the first branch, which this module verifies
numerically (:func:`verify_lemma4`).
"""

from __future__ import annotations

import math
from typing import List


def game_value_table(k: int, delta: int) -> List[List[int]]:
    """The full ``R`` table: ``table[u][N]`` for ``0 <= u, N <= k``.

    Filled iteratively (``u`` ascending, ``N`` descending) since ``R(N,u)``
    depends only on ``R(N+1, u)`` and ``R(., u-1)``.
    """
    if k < 1 or delta < 1:
        raise ValueError("k >= 1 and delta >= 1 required")
    table = [[0] * (k + 1) for _ in range(k + 1)]
    for u in range(1, k + 1):
        prev = table[u - 1]
        row = table[u]
        for n in range(k, -1, -1):
            if delta * u - n <= 0:
                row[n] = 0
                continue
            ceil_drop = n - math.ceil(n / u) + 1
            floor_drop = n - (n // u) + 1
            best = max(prev[min(ceil_drop, k)], prev[min(floor_drop, k)])
            if n < k:
                best = max(best, row[n + 1])
            row[n] = 1 + best
    return table


def game_value(k: int, delta: int, balls_in_u: int = -1, u: int = -1) -> int:
    """Exact game length against the balanced player from a configuration.

    With the default arguments this is the value of the *standard* start
    (``N = u = k``), i.e. the optimal-adversary game length.  Pass
    ``balls_in_u`` and ``u`` for the modified initial condition of
    Section 3.2 (``u`` candidate anchors holding one robot each).
    """
    if balls_in_u < 0:
        balls_in_u = k
    if u < 0:
        u = k
    if not (0 <= balls_in_u <= k and 0 <= u <= k):
        raise ValueError("need 0 <= balls_in_u, u <= k")
    return game_value_table(k, delta)[u][balls_in_u]


def verify_lemma4(k: int, delta: int) -> bool:
    """Numerically check the two statements of Lemma 4 on the ``R`` table:

    i)  ``N -> R(N, u)`` is non-increasing, and
    ii) for ``N < k`` (with ``Delta u - N > 0``) the maximum of (1) is
        achieved by the option-(a) branch ``R(N + 1, u)``.
    """
    table = game_value_table(k, delta)
    for u in range(0, k + 1):
        row = table[u]
        for n in range(k):
            if row[n] < row[n + 1]:
                return False
        if u == 0:
            continue
        prev = table[u - 1]
        for n in range(k):
            if delta * u - n <= 0:
                continue
            ceil_drop = n - math.ceil(n / u) + 1
            floor_drop = n - (n // u) + 1
            option_b = max(prev[min(ceil_drop, k)], prev[min(floor_drop, k)])
            if row[n + 1] < option_b:
                return False
    return True
