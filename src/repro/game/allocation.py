"""Online resource allocation: the paper's "immediate application".

Given ``k`` workers and ``k`` parallelizable tasks of unknown lengths, the
paper (Section 3, "Interpretation of the game") shows that reassigning each
idle worker to the unfinished task with the fewest workers bounds the total
number of task switches by ``k log(k) + 2k`` — a ``log(k) + 2`` factor of
the trivial optimum ``k`` — irrespective of the task lengths.

This module simulates the scheduler round by round: a task with ``w``
workers assigned progresses by ``w`` units per round, and workers freed by
a finishing task are reassigned at the end of the round.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass
class AllocationResult:
    """Outcome of one scheduling run."""

    k: int
    rounds: int
    switches: int
    switches_per_worker: List[int]
    bound: float
    #: Lower bound on the makespan: total work spread over k workers.
    ideal_rounds: float

    @property
    def within_bound(self) -> bool:
        """Switch count within the paper's ``k log k + 2k`` guarantee
        (guaranteed for the least-crowded policy only)."""
        return self.switches <= self.bound


def _least_crowded(unfinished: Sequence[int], workers_on: Sequence[int], rng) -> int:
    return min(unfinished, key=lambda j: (workers_on[j], j))


def _most_crowded(unfinished: Sequence[int], workers_on: Sequence[int], rng) -> int:
    return max(unfinished, key=lambda j: (workers_on[j], -j))


def _random_task(unfinished: Sequence[int], workers_on: Sequence[int], rng) -> int:
    return rng.choice(list(unfinished))


def _first_unfinished(unfinished: Sequence[int], workers_on: Sequence[int], rng) -> int:
    return min(unfinished)


POLICIES: dict = {
    "least-crowded": _least_crowded,
    "most-crowded": _most_crowded,
    "random": _random_task,
    "first-unfinished": _first_unfinished,
}


def run_allocation(
    work: Sequence[float],
    policy: str = "least-crowded",
    seed: int = 0,
    max_rounds: Optional[int] = None,
) -> AllocationResult:
    """Simulate ``k`` workers on ``len(work)`` tasks until all complete.

    ``work[j]`` is the (hidden) amount of work of task ``j``; one worker
    performs one unit per round and tasks are perfectly parallelizable.
    Initially worker ``i`` is assigned to task ``i``.  Whenever a task
    completes, its workers are reassigned by ``policy`` and each
    reassignment counts as one *switch*.
    """
    k = len(work)
    if k < 1:
        raise ValueError("at least one task required")
    if any(w < 0 for w in work):
        raise ValueError("work amounts must be non-negative")
    choose = POLICIES[policy]
    rng = random.Random(seed)

    remaining = [float(w) for w in work]
    assignment = list(range(k))  # worker i -> task
    switches_per_worker = [0] * k
    unfinished = {j for j in range(k) if remaining[j] > 0}
    workers_on = [0] * k
    for j in assignment:
        workers_on[j] += 1

    # Workers whose initial task has zero work are reassigned immediately
    # (at no switch cost below; count them as switches to stay conservative).
    rounds = 0
    cap = max_rounds if max_rounds is not None else int(4 * sum(remaining)) + 4 * k + 64
    switches = 0

    def reassign(worker: int) -> None:
        nonlocal switches
        j = choose(sorted(unfinished), workers_on, rng)
        workers_on[assignment[worker]] -= 1
        assignment[worker] = j
        workers_on[j] += 1
        switches += 1
        switches_per_worker[worker] += 1

    # Initial cleanup for zero-length tasks.
    for i in range(k):
        if unfinished and assignment[i] not in unfinished:
            reassign(i)

    while unfinished:
        if rounds >= cap:
            raise RuntimeError("allocation did not converge (policy starved a task?)")
        rounds += 1
        finished_now = []
        for j in list(unfinished):
            remaining[j] -= workers_on[j]
            if remaining[j] <= 0:
                finished_now.append(j)
        for j in finished_now:
            unfinished.discard(j)
        for i in range(k):
            if unfinished and assignment[i] not in unfinished:
                reassign(i)

    total = float(sum(work))
    return AllocationResult(
        k=k,
        rounds=rounds,
        switches=switches,
        switches_per_worker=switches_per_worker,
        bound=k * math.log(k) + 2 * k if k > 1 else 2.0,
        ideal_rounds=total / k,
    )
