"""Exact minimax value of the balls-in-urns game.

The paper analyses one specific player — the balanced one — and proves
its game length is at most ``k min(log Delta, log k) + 2k`` (Theorem 3),
with the exact value against an optimal adversary given by the ``R(N, u)``
recursion.  A natural question the paper leaves implicit: *is the
balanced player optimal among all players?*

This module answers it numerically for small ``k`` by solving the full
zero-sum game: states are ``(sorted loads of the unchosen urns, balls
outside U)``; the adversary maximises, the player minimises.  States are
canonical up to permutations of urns, so the space is the set of integer
partitions — tractable for ``k`` up to ~12.

Finding (see tests): ``minimax_value(k, k) == game_value(k, k)`` on every
instance checked — the balanced player *is* exactly optimal there, which
strengthens the paper's Theorem 3 from "good" to "best possible" at these
sizes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

State = Tuple[Tuple[int, ...], int]  # (sorted U loads, balls outside U)


def _canonical(loads: Iterable[int], outside: int) -> State:
    return (tuple(sorted(loads)), outside)


def minimax_value(k: int, delta: int) -> int:
    """Game length under optimal play on both sides, from the standard
    start (``k`` unchosen urns with one ball each)."""
    if k < 1 or delta < 1:
        raise ValueError("k >= 1 and delta >= 1 required")
    return _solve(k, delta)[_canonical([1] * k, 0)]


def minimax_from(loads: Iterable[int], outside: int, delta: int) -> int:
    """Game value from an arbitrary configuration."""
    loads = tuple(sorted(loads))
    table = _solve(sum(loads) + outside, delta, start=(loads, outside))
    return table[(loads, outside)]


def _solve(k: int, delta: int, start: State = None) -> Dict[State, int]:  # type: ignore[assignment]
    """Memoised minimax over canonical states."""
    cache: Dict[State, int] = {}
    initial = start if start is not None else _canonical([1] * k, 0)

    def is_over(loads: Tuple[int, ...]) -> bool:
        return all(load >= delta for load in loads)

    def value(loads: Tuple[int, ...], outside: int) -> int:
        state = (loads, outside)
        cached = cache.get(state)
        if cached is not None:
            return cached
        if is_over(loads):
            cache[state] = 0
            return 0
        cache[state] = 0  # cycle guard (the game is acyclic in potential,
        # but the guard keeps accidental loops finite)
        best_adversary = 0
        # Option (a): a ball from outside U; the player replies.
        if outside >= 1:
            best_adversary = max(
                best_adversary, 1 + _player_best(loads, outside - 1, value)
            )
        # Option (b): burn an unchosen urn with load L (distinct L only).
        for load in set(loads):
            if load < 1 and len(loads) > 1:
                # An empty urn may still be chosen; removing it adds no
                # outside balls but shrinks U.
                pass
            remaining = list(loads)
            remaining.remove(load)
            if not remaining:
                # Last unchosen urn chosen: U empties, the game stops
                # after this step.
                best_adversary = max(best_adversary, 1)
                continue
            new_outside = outside + max(load - 1, 0)
            extra = 1 if load >= 1 else 0
            if extra:
                best_adversary = max(
                    best_adversary,
                    1 + _player_best(tuple(remaining), new_outside, value),
                )
            else:
                # Choosing an empty urn is illegal (no ball to move).
                continue
        cache[state] = best_adversary
        return best_adversary

    def _player_best(loads: Tuple[int, ...], outside: int, val) -> int:
        """The moved ball lands in the player's choice of U urn."""
        best = None
        for idx in range(len(loads)):
            if idx > 0 and loads[idx] == loads[idx - 1]:
                continue  # canonical: identical loads are interchangeable
            nxt = list(loads)
            nxt[idx] += 1
            candidate = val(tuple(sorted(nxt)), outside)
            if best is None or candidate < best:
                best = candidate
        return best if best is not None else 0

    value(*initial)
    return cache


def balanced_is_optimal(k: int, delta: int) -> bool:
    """Check ``minimax == R(k, k)``: the balanced player achieves the
    optimal-player value from the standard start."""
    from .optimal import game_value

    return minimax_value(k, delta) == game_value(k, delta)
