"""The two-player zero-sum balls-in-urns game (Section 3.1).

The board is a list of ``k`` urn loads summing to ``k`` (initially one
ball per urn).  At each step the adversary removes a ball from a non-empty
urn ``a_t``; the player places it into an urn ``b_t`` of its choice among
the urns never selected by the adversary.  ``U_t`` is the set of urns never
chosen by the adversary; the game stops when every urn of ``U_t`` holds at
least ``Delta`` balls (vacuously when ``U_t`` is empty).

Theorem 3: the balanced player ends any game within
``k * min(log Delta, log k) + 2k`` steps.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set


class UrnBoard:
    """Mutable game state.

    Parameters
    ----------
    k:
        Number of urns (and balls).
    delta:
        The stopping threshold ``Delta``; when ``delta >= k`` the game
        only stops once every urn has been chosen by the adversary.
    loads:
        Optional initial loads (defaults to one ball per urn).  The
        BFDN reduction (Section 3.2) starts from a board with one urn
        holding ``k - u`` balls and ``u`` urns holding one ball each.
    chosen:
        Urns considered already chosen by the adversary at start.
    """

    def __init__(
        self,
        k: int,
        delta: int,
        loads: Optional[Sequence[int]] = None,
        chosen: Optional[Set[int]] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if delta < 1:
            raise ValueError("delta must be >= 1")
        self.k = k
        self.delta = delta
        if loads is None:
            self.loads: List[int] = [1] * k
        else:
            if len(loads) != k:
                raise ValueError("loads must have length k")
            if any(x < 0 for x in loads):
                raise ValueError("loads must be non-negative")
            self.loads = list(loads)
        self.total = sum(self.loads)
        self.chosen: Set[int] = set(chosen or ())
        self.steps = 0

    # ------------------------------------------------------------------
    @property
    def unchosen(self) -> Set[int]:
        """``U_t``: urns never selected by the adversary."""
        return set(range(self.k)) - self.chosen

    def is_over(self) -> bool:
        """All urns of ``U_t`` hold at least ``Delta`` balls."""
        return all(self.loads[i] >= self.delta for i in self.unchosen)

    def legal_adversary_moves(self) -> List[int]:
        """Non-empty urns the adversary may pick from."""
        return [i for i in range(self.k) if self.loads[i] >= 1]

    def legal_player_moves(self, a: int) -> List[int]:
        """Urns the player may move the ball to: urns never chosen by the
        adversary (``a`` excluded since it has just been chosen)."""
        return [i for i in range(self.k) if i not in self.chosen and i != a]

    # ------------------------------------------------------------------
    def step(self, a: int, b: int) -> None:
        """Apply one (adversary, player) move pair.

        The player must place the ball into a never-chosen urn whenever one
        exists; when the adversary has just chosen the last unchosen urn the
        placement is irrelevant (the game ends) and any urn is accepted.
        """
        if self.loads[a] < 1:
            raise ValueError(f"urn {a} is empty")
        self.chosen.add(a)
        if b in self.chosen and any(
            i not in self.chosen for i in range(self.k)
        ):
            raise ValueError(f"urn {b} was already chosen by the adversary")
        self.loads[a] -= 1
        self.loads[b] += 1
        self.steps += 1

    # ------------------------------------------------------------------
    def theorem3_bound(self) -> float:
        """``k min(log Delta, log k) + 2k`` (natural logarithms)."""
        return self.k * min(math.log(self.delta), math.log(self.k)) + 2 * self.k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UrnBoard(k={self.k}, delta={self.delta}, steps={self.steps}, "
            f"|U|={len(self.unchosen)}, loads={self.loads})"
        )
