"""Player (urn-chooser) strategies for the balls-in-urns game.

The paper's player is :class:`BalancedPlayer`: put the ball into the
least-loaded urn among those never chosen by the adversary.  Theorem 3
bounds its game length by ``k min(log Delta, log k) + 2k``.  The other
strategies are ablations showing that balancing is necessary.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from .board import UrnBoard


class UrnPlayer(ABC):
    """Chooses the destination urn ``b_t`` after the adversary's pick."""

    name = "abstract"

    @abstractmethod
    def choose(self, board: UrnBoard, a: int) -> int:
        """Destination urn for the ball removed from urn ``a``."""


class BalancedPlayer(UrnPlayer):
    """The paper's strategy: least-loaded never-chosen urn
    (``b_t in argmin_{i in U \\ {a_t}} n_i``, ties to the lowest index)."""

    name = "balanced"

    def choose(self, board: UrnBoard, a: int) -> int:
        candidates = board.legal_player_moves(a)
        if not candidates:
            raise ValueError("no legal player move: the game should be over")
        return min(candidates, key=lambda i: (board.loads[i], i))


class GreedyWorstPlayer(UrnPlayer):
    """Ablation: always refill the *most* loaded unchosen urn, keeping the
    others starved — the opposite of the paper's strategy."""

    name = "most-loaded"

    def choose(self, board: UrnBoard, a: int) -> int:
        candidates = board.legal_player_moves(a)
        if not candidates:
            raise ValueError("no legal player move: the game should be over")
        return max(candidates, key=lambda i: (board.loads[i], -i))


class RandomPlayer(UrnPlayer):
    """Ablation: uniform choice among never-chosen urns."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, board: UrnBoard, a: int) -> int:
        candidates = board.legal_player_moves(a)
        if not candidates:
            raise ValueError("no legal player move: the game should be over")
        return self._rng.choice(candidates)


class FixedTargetPlayer(UrnPlayer):
    """Ablation: dump every ball into the lowest-indexed legal urn."""

    name = "fixed-target"

    def choose(self, board: UrnBoard, a: int) -> int:
        candidates = board.legal_player_moves(a)
        if not candidates:
            raise ValueError("no legal player move: the game should be over")
        return min(candidates)
