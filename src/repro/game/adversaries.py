"""Adversary (ball-picker) strategies for the balls-in-urns game.

Lemma 4 of the paper shows a strategic adversary always prefers option (a)
— re-picking an urn it has already chosen — whenever a ball lies outside
``U_t``, and otherwise empties the most loaded urn of ``U_t`` (removing
``ceil(N/u)`` balls' worth of budget).  :class:`GreedyAdversary` implements
exactly that; the DP in :mod:`repro.game.optimal` certifies it is optimal
against the balanced player.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from .board import UrnBoard


class UrnAdversary(ABC):
    """Chooses the source urn ``a_t`` each step (must be non-empty)."""

    name = "abstract"

    @abstractmethod
    def choose(self, board: UrnBoard) -> int:
        """The urn the ball is removed from."""


class GreedyAdversary(UrnAdversary):
    """The optimal play from Lemma 4.

    Option (a) whenever available: pick a previously-chosen urn holding a
    ball.  Otherwise option (b): pick the most loaded urn of ``U_t``
    (maximising the balls expelled from ``U``, i.e. minimising ``N_{t+1}``,
    which is best since ``R(., u)`` is non-increasing).
    """

    name = "greedy"

    def choose(self, board: UrnBoard) -> int:
        chosen_with_balls = [i for i in board.chosen if board.loads[i] >= 1]
        if chosen_with_balls:
            return min(chosen_with_balls)  # any one works; deterministic
        unchosen = board.unchosen
        return max(unchosen, key=lambda i: (board.loads[i], -i))


class FreshUrnAdversary(UrnAdversary):
    """Ablation: always burns a fresh urn (option (b)) — provably
    suboptimal, ends the game in at most ``~k`` steps."""

    name = "fresh-urn"

    def choose(self, board: UrnBoard) -> int:
        unchosen = [i for i in board.unchosen if board.loads[i] >= 1]
        if unchosen:
            return min(unchosen)
        legal = board.legal_adversary_moves()
        return min(legal)


class RandomAdversary(UrnAdversary):
    """Uniform choice among non-empty urns."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, board: UrnBoard) -> int:
        return self._rng.choice(board.legal_adversary_moves())


class MinLoadAdversary(UrnAdversary):
    """Ablation: drains the least-loaded non-empty urn."""

    name = "min-load"

    def choose(self, board: UrnBoard) -> int:
        legal = board.legal_adversary_moves()
        return min(legal, key=lambda i: (board.loads[i], i))


class DPAdversary(UrnAdversary):
    """The provably optimal adversary, reading moves off the ``R(N, u)``
    table of :mod:`repro.game.optimal`.

    At each step it evaluates both options of the recursion — re-pick a
    chosen urn (option (a)) when a ball lies outside ``U``, or burn a
    fresh urn (option (b)) — and picks the branch with the larger
    remaining value.  Against the balanced player its game length equals
    ``R`` exactly, which certifies :class:`GreedyAdversary` (Lemma 4's
    "option (a) first" rule) empirically.
    """

    name = "dp-optimal"

    def __init__(self, k: int, delta: int):
        from .optimal import game_value_table

        self._table = game_value_table(k, delta)
        self.k = k

    def choose(self, board: UrnBoard) -> int:
        unchosen = board.unchosen
        n_in_u = sum(board.loads[i] for i in unchosen)
        u = len(unchosen)
        best_value = -1
        best_urn: int = -1
        # Option (a): any previously chosen urn with a ball.
        chosen_with_balls = [i for i in board.chosen if board.loads[i] >= 1]
        if chosen_with_balls:
            value = self._table[u][min(n_in_u + 1, self.k)]
            if value > best_value:
                best_value = value
                best_urn = min(chosen_with_balls)
        # Option (b): each unchosen urn (distinct loads matter).
        for i in sorted(unchosen):
            if board.loads[i] < 1:
                continue
            next_n = min(n_in_u - board.loads[i] + 1, self.k)
            value = self._table[u - 1][next_n] if u >= 1 else 0
            if value > best_value:
                best_value = value
                best_urn = i
        if best_urn < 0:
            return min(board.legal_adversary_moves())
        return best_urn
