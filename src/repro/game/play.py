"""Game runner for the balls-in-urns game."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .adversaries import UrnAdversary
from .board import UrnBoard
from .players import UrnPlayer


@dataclass
class GameRecord:
    """A full play-out of the game."""

    k: int
    delta: int
    steps: int
    bound: float
    history: List[Tuple[int, int]] = field(default_factory=list)
    final_loads: List[int] = field(default_factory=list)

    @property
    def within_bound(self) -> bool:
        """Did the game respect Theorem 3's bound?  (Only guaranteed when
        the player is the balanced player.)"""
        return self.steps <= self.bound


def play_game(
    board: UrnBoard,
    adversary: UrnAdversary,
    player: UrnPlayer,
    max_steps: Optional[int] = None,
    record_history: bool = False,
) -> GameRecord:
    """Play the game to completion and return the record.

    ``max_steps`` guards against non-terminating ablation match-ups (e.g. a
    bad player against a patient adversary); it defaults to ``8 k^2 + 64``,
    far above Theorem 3's ``k log k + 2k``.
    """
    cap = max_steps if max_steps is not None else 8 * board.k * board.k + 64
    history: List[Tuple[int, int]] = []
    while not board.is_over():
        if board.steps >= cap:
            break
        a = adversary.choose(board)
        legal = [i for i in range(board.k) if i not in board.chosen and i != a]
        b = player.choose(board, a) if legal else a
        board.step(a, b)
        if record_history:
            history.append((a, b))
    return GameRecord(
        k=board.k,
        delta=board.delta,
        steps=board.steps,
        bound=board.theorem3_bound(),
        history=history,
        final_loads=list(board.loads),
    )
