"""Game runner for the balls-in-urns game.

The play-out loop is the shared round engine
(:mod:`repro.sim.runloop`): the board is the :class:`RoundState`, the
(adversary, player) pair is the :class:`Policy`, and the step cap is the
engine's graceful billed-round budget — the same kernel that drives the
tree, reactive and graph explorations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim.runloop import Policy, RoundEngine, RoundObserver, RoundState
from .adversaries import UrnAdversary
from .board import UrnBoard
from .players import UrnPlayer


@dataclass
class GameRecord:
    """A full play-out of the game."""

    k: int
    delta: int
    steps: int
    bound: float
    history: List[Tuple[int, int]] = field(default_factory=list)
    final_loads: List[int] = field(default_factory=list)

    @property
    def within_bound(self) -> bool:
        """Did the game respect Theorem 3's bound?  (Only guaranteed when
        the player is the balanced player.)"""
        return self.steps <= self.bound


class UrnRoundState(RoundState):
    """Adapts an :class:`UrnBoard` to the runloop protocol."""

    def __init__(self, board: UrnBoard, record_history: bool = False):
        self.board = board
        self.record_history = record_history
        self.history: List[Tuple[int, int]] = []

    def apply(self, moves, movable):
        """Apply one (adversary, player) move pair to the board."""
        a, b = moves
        self.board.step(a, b)
        if self.record_history:
            self.history.append((a, b))
        return (a, b)

    def billed_rounds(self) -> int:
        """Game steps played so far."""
        return self.board.steps

    def is_complete(self) -> bool:
        """Theorem 3's stop rule: every never-chosen urn holds ``Delta``."""
        return self.board.is_over()

    def progress_token(self):
        """The step counter — every game step progresses."""
        return self.board.steps


class UrnGamePolicy(Policy):
    """Selects one (adversary, player) move pair per round."""

    name = "urn-game"

    def __init__(self, adversary: UrnAdversary, player: UrnPlayer):
        self.adversary = adversary
        self.player = player

    def select_moves(self, state: UrnRoundState, movable) -> Tuple[int, int]:
        """The adversary picks an urn; the player places the ball.

        When the adversary has just chosen the last unchosen urn the
        placement is irrelevant (the game ends) and ``a`` is echoed.
        """
        board = state.board
        a = self.adversary.choose(board)
        legal = [i for i in range(board.k) if i not in board.chosen and i != a]
        b = self.player.choose(board, a) if legal else a
        return (a, b)


def play_game(
    board: UrnBoard,
    adversary: UrnAdversary,
    player: UrnPlayer,
    max_steps: Optional[int] = None,
    record_history: bool = False,
    observers: Sequence[RoundObserver] = (),
) -> GameRecord:
    """Play the game to completion and return the record.

    ``max_steps`` guards against non-terminating ablation match-ups (e.g. a
    bad player against a patient adversary); it defaults to ``8 k^2 + 64``,
    far above Theorem 3's ``k log k + 2k``.  ``observers`` are per-round
    engine hooks (timing, logging, early stops).
    """
    cap = max_steps if max_steps is not None else 8 * board.k * board.k + 64
    state = UrnRoundState(board, record_history=record_history)
    engine = RoundEngine(
        state=state,
        policy=UrnGamePolicy(adversary, player),
        observers=observers,
        stop_when_complete=True,
        billed_stop=cap,
    )
    engine.run()
    return GameRecord(
        k=board.k,
        delta=board.delta,
        steps=board.steps,
        bound=board.theorem3_bound(),
        history=state.history,
        final_loads=list(board.loads),
    )
