"""The balls-in-urns game of Section 3 and its resource-allocation
interpretation."""

from .adversaries import (
    DPAdversary,
    FreshUrnAdversary,
    GreedyAdversary,
    MinLoadAdversary,
    RandomAdversary,
    UrnAdversary,
)
from .allocation import POLICIES, AllocationResult, run_allocation
from .board import UrnBoard
from .minimax import balanced_is_optimal, minimax_from, minimax_value
from .optimal import game_value, game_value_table, verify_lemma4
from .play import GameRecord, play_game
from .players import (
    BalancedPlayer,
    FixedTargetPlayer,
    GreedyWorstPlayer,
    RandomPlayer,
    UrnPlayer,
)

__all__ = [
    "UrnBoard",
    "UrnPlayer",
    "BalancedPlayer",
    "GreedyWorstPlayer",
    "RandomPlayer",
    "FixedTargetPlayer",
    "UrnAdversary",
    "GreedyAdversary",
    "DPAdversary",
    "FreshUrnAdversary",
    "RandomAdversary",
    "MinLoadAdversary",
    "play_game",
    "GameRecord",
    "game_value",
    "game_value_table",
    "verify_lemma4",
    "minimax_value",
    "minimax_from",
    "balanced_is_optimal",
    "run_allocation",
    "AllocationResult",
    "POLICIES",
]
